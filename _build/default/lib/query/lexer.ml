type token =
  | SELECT
  | FROM
  | WHERE
  | WITH
  | UNION
  | INTERSECT
  | EXCEPT
  | JOIN
  | ON
  | TIMES
  | AND
  | OR
  | NOT
  | IS
  | TRUE
  | SN
  | SP
  | ORDER
  | BY
  | ASC
  | DESC
  | LIMIT
  | PREFIX
  | STAR
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EVIDENCE of string

exception Lex_error of { position : int; message : string }

let fail position message = raise (Lex_error { position; message })

let keyword_of_string s =
  match String.uppercase_ascii s with
  | "SELECT" -> Some SELECT
  | "FROM" -> Some FROM
  | "WHERE" -> Some WHERE
  | "WITH" -> Some WITH
  | "UNION" -> Some UNION
  | "INTERSECT" -> Some INTERSECT
  | "EXCEPT" -> Some EXCEPT
  | "JOIN" -> Some JOIN
  | "ON" -> Some ON
  | "TIMES" -> Some TIMES
  | "AND" -> Some AND
  | "OR" -> Some OR
  | "NOT" -> Some NOT
  | "IS" -> Some IS
  | "TRUE" -> Some TRUE
  | "SN" -> Some SN
  | "SP" -> Some SP
  | "ORDER" -> Some ORDER
  | "BY" -> Some BY
  | "ASC" -> Some ASC
  | "DESC" -> Some DESC
  | "LIMIT" -> Some LIMIT
  | "PREFIX" -> Some PREFIX
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c || c = '-' || c = '.'

let tokenize input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else
        match c with
        | '(' -> go (i + 1) (LPAREN :: acc)
        | ')' -> go (i + 1) (RPAREN :: acc)
        | '{' -> go (i + 1) (LBRACE :: acc)
        | '}' -> go (i + 1) (RBRACE :: acc)
        | ',' -> go (i + 1) (COMMA :: acc)
        | '*' -> go (i + 1) (STAR :: acc)
        | '=' -> go (i + 1) (EQ :: acc)
        | '<' ->
            if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (LE :: acc)
            else if i + 1 < n && input.[i + 1] = '>' then go (i + 2) (NE :: acc)
            else go (i + 1) (LT :: acc)
        | '>' ->
            if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (GE :: acc)
            else go (i + 1) (GT :: acc)
        | '[' ->
            (* Capture the whole evidence literal verbatim. *)
            let rec close j =
              if j >= n then fail i "unterminated evidence literal"
              else if input.[j] = ']' then j
              else close (j + 1)
            in
            let j = close (i + 1) in
            go (j + 1) (EVIDENCE (String.sub input i (j - i + 1)) :: acc)
        | '"' ->
            let rec close j =
              if j >= n then fail i "unterminated string literal"
              else if input.[j] = '\\' then close (j + 2)
              else if input.[j] = '"' then j
              else close (j + 1)
            in
            let j = close (i + 1) in
            let raw = String.sub input i (j - i + 1) in
            let value =
              try Scanf.sscanf raw "%S%!" (fun s -> s)
              with Scanf.Scan_failure _ | Failure _ | End_of_file ->
                fail i "malformed string literal"
            in
            go (j + 1) (STRING value :: acc)
        | c when is_digit c || (c = '-' && i + 1 < n && is_digit input.[i + 1])
          ->
            let j = ref (i + 1) in
            let seen_dot = ref false in
            while
              !j < n
              && (is_digit input.[!j] || (input.[!j] = '.' && not !seen_dot))
            do
              if input.[!j] = '.' then seen_dot := true;
              incr j
            done;
            let raw = String.sub input i (!j - i) in
            let tok =
              if !seen_dot then
                match float_of_string_opt raw with
                | Some f -> FLOAT f
                | None -> fail i ("malformed number " ^ raw)
              else
                match int_of_string_opt raw with
                | Some k -> INT k
                | None -> fail i ("malformed number " ^ raw)
            in
            go !j (tok :: acc)
        | c when is_ident_start c ->
            let j = ref (i + 1) in
            while !j < n && is_ident_char input.[!j] do
              incr j
            done;
            let raw = String.sub input i (!j - i) in
            let tok =
              match keyword_of_string raw with
              | Some kw -> kw
              | None -> IDENT raw
            in
            go !j (tok :: acc)
        | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

let token_to_string = function
  | SELECT -> "SELECT"
  | FROM -> "FROM"
  | WHERE -> "WHERE"
  | WITH -> "WITH"
  | UNION -> "UNION"
  | INTERSECT -> "INTERSECT"
  | EXCEPT -> "EXCEPT"
  | JOIN -> "JOIN"
  | ON -> "ON"
  | TIMES -> "TIMES"
  | AND -> "AND"
  | OR -> "OR"
  | NOT -> "NOT"
  | IS -> "IS"
  | TRUE -> "TRUE"
  | SN -> "SN"
  | SP -> "SP"
  | ORDER -> "ORDER"
  | BY -> "BY"
  | ASC -> "ASC"
  | DESC -> "DESC"
  | LIMIT -> "LIMIT"
  | PREFIX -> "PREFIX"
  | STAR -> "*"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | IDENT s -> s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | EVIDENCE s -> s
