let fail fmt = Format.kasprintf (fun s -> raise (Eval.Eval_error s)) fmt

let rec infer_schema env = function
  | Ast.Rel name -> (
      match List.assoc_opt name env with
      | Some r -> Erm.Relation.schema r
      | None -> fail "unknown relation %s" name)
  | Ast.Select { cols; from; _ } -> (
      let inner = infer_schema env from in
      match cols with
      | None -> inner
      | Some names -> (
          try Erm.Schema.project inner names
          with Erm.Schema.Schema_error m -> fail "projection: %s" m))
  | Ast.Union (a, _) | Ast.Intersect (a, _) | Ast.Except (a, _) ->
      infer_schema env a
  | Ast.Product (a, b) | Ast.Join { left = a; right = b; _ } -> (
      try Erm.Schema.product (infer_schema env a) (infer_schema env b)
      with Erm.Schema.Schema_error m -> fail "product: %s" m)
  | Ast.Ranked { from; _ } -> infer_schema env from
  | Ast.Prefixed { from; prefix } -> (
      try Erm.Schema.rename_attrs (fun n -> prefix ^ n) (infer_schema env from)
      with Erm.Schema.Schema_error m -> fail "prefix: %s" m)

(* Attributes a predicate references. *)
let rec pred_attrs = function
  | Ast.True -> []
  | Ast.Is (a, _) -> [ a ]
  | Ast.Cmp (_, x, y) ->
      let of_op = function Ast.Attr a -> [ a ] | _ -> [] in
      of_op x @ of_op y
  | Ast.And (a, b) | Ast.Or (a, b) -> pred_attrs a @ pred_attrs b
  | Ast.Not a -> pred_attrs a

let all_in schema attrs =
  List.for_all (fun a -> Erm.Schema.mem schema a) attrs

(* Split a predicate into its top-level conjuncts. *)
let rec conjuncts = function
  | Ast.And (a, b) -> conjuncts a @ conjuncts b
  | Ast.True -> []
  | p -> [ p ]

let conjoin = function
  | [] -> Ast.True
  | p :: rest -> List.fold_left (fun acc q -> Ast.And (acc, q)) p rest

(* Wrap an operand of a product/join in a pushed-down, threshold-free
   selection. *)
let select_on side preds =
  match preds with
  | [] -> side
  | _ ->
      Ast.Select
        { cols = None;
          from = side;
          where = conjoin preds;
          threshold = Erm.Threshold.Always }

(* Partition conjuncts by which operand's schema covers them. An
   evidence literal binds against its peer attribute, which moves with
   the conjunct, so pushing is safe for every operand form. *)
let partition_conjuncts sl sr preds =
  List.fold_left
    (fun (left, right, keep) p ->
      let attrs = pred_attrs p in
      if attrs <> [] && all_in sl attrs then (p :: left, right, keep)
      else if attrs <> [] && all_in sr attrs then (left, p :: right, keep)
      else (left, right, p :: keep))
    ([], [], []) preds
  |> fun (l, r, k) -> (List.rev l, List.rev r, List.rev k)

let rec rewrite env q =
  match q with
  | Ast.Rel _ -> q
  | Ast.Ranked { from; by; ascending; limit = None } ->
      (* ORDER BY without LIMIT is the identity on a set. *)
      ignore by;
      ignore ascending;
      rewrite env from
  | Ast.Ranked ({ from; _ } as r) ->
      Ast.Ranked { r with from = rewrite env from }
  | Ast.Prefixed ({ from; _ } as r) ->
      Ast.Prefixed { r with from = rewrite env from }
  | Ast.Union (a, b) -> Ast.Union (rewrite env a, rewrite env b)
  | Ast.Intersect (a, b) -> Ast.Intersect (rewrite env a, rewrite env b)
  | Ast.Except (a, b) -> Ast.Except (rewrite env a, rewrite env b)
  | Ast.Product (a, b) -> Ast.Product (rewrite env a, rewrite env b)
  | Ast.Join { left; right; on; threshold } ->
      let left = rewrite env left and right = rewrite env right in
      let sl = infer_schema env left and sr = infer_schema env right in
      let push_l, push_r, keep = partition_conjuncts sl sr (conjuncts on) in
      Ast.Join
        { left = select_on left push_l;
          right = select_on right push_r;
          on = conjoin keep;
          threshold }
  | Ast.Select { cols; from; where; threshold } -> (
      let from = rewrite env from in
      match from with
      (* Cascade: merge into an inner threshold-free selection. *)
      | Ast.Select
          { cols = None; from = inner; where = w'; threshold = Erm.Threshold.Always }
        ->
          rewrite env
            (Ast.Select
               { cols; from = inner; where = Ast.And (where, w'); threshold })
      (* Fusion: select over product becomes a join. *)
      | Ast.Product (a, b) when cols = None ->
          rewrite env (Ast.Join { left = a; right = b; on = where; threshold })
      (* Pushdown through a threshold-free join: conjuncts covered by one
         side move into that side. *)
      | Ast.Join
          { left; right; on; threshold = Erm.Threshold.Always }
        when cols = None ->
          let sl = infer_schema env left and sr = infer_schema env right in
          let push_l, push_r, keep =
            partition_conjuncts sl sr (conjuncts where)
          in
          if push_l = [] && push_r = [] then
            if
              cols = None && where = Ast.True
              && threshold = Erm.Threshold.Always
            then from
            else Ast.Select { cols; from; where; threshold }
          else
            rewrite env
              (Ast.Select
                 { cols;
                   from =
                     Ast.Join
                       { left = select_on left push_l;
                         right = select_on right push_r;
                         on;
                         threshold = Erm.Threshold.Always };
                   where = conjoin keep;
                   threshold })
      | _ ->
          (* A trivial selection is the identity: no predicate, no
             threshold, no column list. *)
          if cols = None && where = Ast.True && threshold = Erm.Threshold.Always
          then from
          else Ast.Select { cols; from; where; threshold })

let optimize env q =
  (* Rewrites are size-reducing or strictly-structuring; a short fixpoint
     loop suffices. *)
  let rec fixpoint n q =
    if n = 0 then q
    else
      let q' = rewrite env q in
      if Ast.equal q q' then q else fixpoint (n - 1) q'
  in
  fixpoint 8 q

let eval_optimized env q = Eval.eval env (optimize env q)
