(** Query evaluation: bind an {!Ast.query} against an environment of
    named extended relations and run the extended operators. *)

type env = (string * Erm.Relation.t) list

exception Eval_error of string

val bind_pred :
  (string -> Erm.Attr.t option) -> Ast.pred -> Erm.Predicate.t
(** Resolve literals into a typed {!Erm.Predicate.t}. Set literals become
    categorical evidence over their own values; evidence literals are
    parsed against the {e peer} attribute's domain, so [e0 = \[v1^0.5;
    v2^0.5\]] requires [e0] to be evidential.
    @raise Eval_error on unknown attributes or unbindable literals. *)

val eval : env -> Ast.query -> Erm.Relation.t
(** @raise Eval_error on unknown relation names, binding failures, or
    schema errors (wrapped with context). Evidence conflicts raised by
    union ({!Dst.Mass.F.Total_conflict}) propagate unchanged. *)

val run : env -> string -> Erm.Relation.t
(** Parse then evaluate. @raise Parser.Parse_error / {!Eval_error}. *)
