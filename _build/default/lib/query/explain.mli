(** Query plans as printable trees with cardinality estimates.

    Estimation is structural and conservative — it never evaluates the
    query. A scan's bounds are the stored tuple count; a selection can
    keep anything from nothing to everything; union bounds add, product
    bounds multiply; [LIMIT k] caps both ends. The point is to show
    {e shape} (what the optimizer moved where) and {e blow-up risk}
    (products), not precise selectivities — evidential selectivity would
    need the very Bel/Pls evaluation the explainer avoids. *)

type node = {
  op : string;  (** e.g. ["scan"], ["select"], ["join"]. *)
  detail : string;  (** Relation name, predicate text, threshold, … *)
  rows_min : float;
  rows_max : float;
  children : node list;
}

val explain : Eval.env -> Ast.query -> node
(** @raise Eval.Eval_error on unknown relations (schemas must
    resolve). *)

val explain_optimized : Eval.env -> Ast.query -> node
(** {!explain} of [Plan.optimize]'s output — what will actually run. *)

val pp : Format.formatter -> node -> unit
(** An indented tree, one node per line:
    {v
    select [rating IS {ex}] rows=[0, 6]
      union rows=[6, 11]
        scan ra rows=[6, 6]
        scan rb rows=[5, 5]
    v} *)

val to_string : node -> string
