(** Tokenizer for the ERIDB query language.

    Keywords are case-insensitive; identifiers keep their case. Evidence
    literals ([[…]]) are captured verbatim as single tokens, since their
    interpretation needs a frame that only the evaluator knows. *)

type token =
  | SELECT
  | FROM
  | WHERE
  | WITH
  | UNION
  | INTERSECT
  | EXCEPT
  | JOIN
  | ON
  | TIMES
  | AND
  | OR
  | NOT
  | IS
  | TRUE
  | SN
  | SP
  | ORDER
  | BY
  | ASC
  | DESC
  | LIMIT
  | PREFIX
  | STAR
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EVIDENCE of string  (** Raw bracketed evidence-literal text. *)

exception Lex_error of { position : int; message : string }

val tokenize : string -> token list
(** @raise Lex_error on unterminated strings/evidence literals or
    unexpected characters. *)

val token_to_string : token -> string
