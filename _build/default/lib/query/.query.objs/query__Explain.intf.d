lib/query/explain.mli: Ast Eval Format
