lib/query/eval.ml: Ast Dst Erm Format List Parser
