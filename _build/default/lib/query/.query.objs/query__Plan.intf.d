lib/query/plan.mli: Ast Erm Eval
