lib/query/eval.mli: Ast Erm
