lib/query/lexer.mli:
