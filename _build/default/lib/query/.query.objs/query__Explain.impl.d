lib/query/explain.ml: Ast Erm Eval Float Format List Plan Printf String
