lib/query/plan.ml: Ast Erm Eval Format List
