lib/query/ast.mli: Dst Erm Format
