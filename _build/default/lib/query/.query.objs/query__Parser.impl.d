lib/query/parser.ml: Ast Dst Erm Format Lexer List
