lib/query/ast.ml: Dst Erm Format
