(** Abstract syntax of the ERIDB query language.

    A small SQL-like surface over the extended algebra (the "Query
    Processing" box of Figure 1; the paper's §4 names query processing
    over these operators as its ongoing work):

    {v
    SELECT rname, phone FROM ra WHERE speciality IS {si} WITH SN > 0.5
    ra UNION rb
    SELECT * FROM ra JOIN rm ON rname = r_rname WHERE rating IS {ex}
    v}

    Evidence literals in θ-comparisons keep their raw text here; they can
    only be given a frame once the evaluator knows which attribute they
    are compared against. *)

type operand =
  | Attr of string
  | Scalar of Dst.Value.t
  | Set_lit of Dst.Value.t list
      (** [{a, b}] — categorical evidence over the peer attribute's
          domain. *)
  | Evidence_lit of string
      (** Raw [[…^…]] text, parsed against the peer attribute's domain
          at evaluation time. *)

type pred =
  | True
  | Is of string * Dst.Value.t list
  | Cmp of Erm.Predicate.cmp * operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type query =
  | Rel of string  (** A named relation from the evaluation environment. *)
  | Select of {
      cols : string list option;  (** [None] is [SELECT *]. *)
      from : query;
      where : pred;
      threshold : Erm.Threshold.t;
    }
  | Union of query * query
  | Intersect of query * query
      (** Key-matched Dempster merge only (extension; see
          {!Erm.Ops.intersection}). *)
  | Except of query * query
      (** Key-based difference (extension; see {!Erm.Ops.difference}). *)
  | Product of query * query
  | Join of {
      left : query;
      right : query;
      on : pred;
      threshold : Erm.Threshold.t;
    }
  | Ranked of {
      from : query;
      by : Erm.Threshold.field;
      ascending : bool;
      limit : int option;
    }
      (** [ORDER BY SN/SP \[ASC|DESC\] \[LIMIT k\]] (extension): keep the
          [k] best/worst tuples by membership. Without [LIMIT] the node
          is the identity — extended relations are sets; ordering only
          selects, it cannot persist. *)
  | Prefixed of { from : query; prefix : string }
      (** [rb PREFIX r_] (extension): rename every attribute with the
          prefix, so self-joins need no pre-renamed copies:
          [ra JOIN (ra PREFIX r_) ON rname = r_rname]. *)

val pp_operand : Format.formatter -> operand -> unit
val pp_pred : Format.formatter -> pred -> unit

val pp : Format.formatter -> query -> unit
(** Prints re-parsable query text. *)

val to_string : query -> string

val equal : query -> query -> bool
(** Structural equality (used by optimizer tests). *)
