type operand =
  | Attr of string
  | Scalar of Dst.Value.t
  | Set_lit of Dst.Value.t list
  | Evidence_lit of string

type pred =
  | True
  | Is of string * Dst.Value.t list
  | Cmp of Erm.Predicate.cmp * operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type query =
  | Rel of string
  | Select of {
      cols : string list option;
      from : query;
      where : pred;
      threshold : Erm.Threshold.t;
    }
  | Union of query * query
  | Intersect of query * query
  | Except of query * query
  | Product of query * query
  | Join of {
      left : query;
      right : query;
      on : pred;
      threshold : Erm.Threshold.t;
    }
  | Ranked of {
      from : query;
      by : Erm.Threshold.field;
      ascending : bool;
      limit : int option;
    }
  | Prefixed of { from : query; prefix : string }

let pp_operand ppf = function
  | Attr a -> Format.pp_print_string ppf a
  | Scalar v -> Dst.Value.pp ppf v
  | Set_lit vs ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Dst.Value.pp)
        vs
  | Evidence_lit raw -> Format.pp_print_string ppf raw

let rec pp_pred ppf = function
  | True -> Format.pp_print_string ppf "TRUE"
  | Is (a, vs) -> Format.fprintf ppf "%s IS %a" a pp_operand (Set_lit vs)
  | Cmp (cmp, x, y) ->
      Format.fprintf ppf "%a %s %a" pp_operand x
        (Erm.Predicate.cmp_to_string cmp)
        pp_operand y
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_pred a pp_pred b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp_pred a

let pp_threshold ppf (t : Erm.Threshold.t) =
  let rec go ppf = function
    | Erm.Threshold.Always -> Format.pp_print_string ppf "ALWAYS"
    | Erm.Threshold.Cmp (f, op, b) ->
        let field =
          match f with Erm.Threshold.Sn -> "SN" | Erm.Threshold.Sp -> "SP"
        in
        let op =
          match op with
          | Erm.Threshold.Gt -> ">"
          | Erm.Threshold.Ge -> ">="
          | Erm.Threshold.Lt -> "<"
          | Erm.Threshold.Le -> "<="
          | Erm.Threshold.Eq -> "="
        in
        Format.fprintf ppf "%s %s %g" field op b
    | Erm.Threshold.Both (a, b) -> Format.fprintf ppf "%a AND %a" go a go b
  in
  go ppf t

let rec pp ppf = function
  | Rel name -> Format.pp_print_string ppf name
  | Select { cols; from; where; threshold } ->
      let pp_cols ppf = function
        | None -> Format.pp_print_string ppf "*"
        | Some cs ->
            Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
              Format.pp_print_string ppf cs
      in
      Format.fprintf ppf "SELECT %a FROM %a" pp_cols cols pp_nested from;
      (match where with
      | True -> ()
      | _ -> Format.fprintf ppf " WHERE %a" pp_pred where);
      (match threshold with
      | Erm.Threshold.Always -> ()
      | t -> Format.fprintf ppf " WITH %a" pp_threshold t)
  | Union (a, b) -> Format.fprintf ppf "%a UNION %a" pp_nested a pp_nested b
  | Intersect (a, b) ->
      Format.fprintf ppf "%a INTERSECT %a" pp_nested a pp_nested b
  | Except (a, b) -> Format.fprintf ppf "%a EXCEPT %a" pp_nested a pp_nested b
  | Product (a, b) ->
      Format.fprintf ppf "%a TIMES %a" pp_nested a pp_nested b
  | Join { left; right; on; threshold } ->
      Format.fprintf ppf "%a JOIN %a ON %a" pp_nested left pp_nested right
        pp_pred on;
      (match threshold with
      | Erm.Threshold.Always -> ()
      | t -> Format.fprintf ppf " WITH %a" pp_threshold t)
  | Ranked { from; by; ascending; limit } ->
      Format.fprintf ppf "%a ORDER BY %s %s" pp_nested from
        (match by with Erm.Threshold.Sn -> "SN" | Erm.Threshold.Sp -> "SP")
        (if ascending then "ASC" else "DESC");
      (match limit with
      | Some k -> Format.fprintf ppf " LIMIT %d" k
      | None -> ())
  | Prefixed { from; prefix } ->
      Format.fprintf ppf "%a PREFIX %s" pp_nested from prefix

and pp_nested ppf q =
  match q with
  | Rel name -> Format.pp_print_string ppf name
  | Select _ | Union _ | Intersect _ | Except _ | Product _ | Join _
  | Ranked _ | Prefixed _ ->
      Format.fprintf ppf "(%a)" pp q

let to_string q = Format.asprintf "%a" pp q
let equal (a : query) (b : query) = a = b
