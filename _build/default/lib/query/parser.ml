exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let advance st =
  match st.tokens with
  | [] -> fail "unexpected end of query"
  | t :: rest ->
      st.tokens <- rest;
      t

let expect st tok =
  let got = advance st in
  if got <> tok then
    fail "expected %s, got %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string got)

let accept st tok =
  match peek st with
  | Some t when t = tok ->
      ignore (advance st);
      true
  | Some _ | None -> false

let literal_value st =
  match advance st with
  | Lexer.INT n -> Dst.Value.int n
  | Lexer.FLOAT f -> Dst.Value.float f
  | Lexer.STRING s -> Dst.Value.string s
  | Lexer.IDENT s -> Dst.Value.string s
  | t -> fail "expected a literal, got %s" (Lexer.token_to_string t)

let set_literal st =
  expect st Lexer.LBRACE;
  let rec elems acc =
    let v = literal_value st in
    if accept st Lexer.COMMA then elems (v :: acc)
    else begin
      expect st Lexer.RBRACE;
      List.rev (v :: acc)
    end
  in
  elems []

let cmp_of_token = function
  | Lexer.EQ -> Some Erm.Predicate.Eq
  | Lexer.NE -> Some Erm.Predicate.Ne
  | Lexer.LT -> Some Erm.Predicate.Lt
  | Lexer.LE -> Some Erm.Predicate.Le
  | Lexer.GT -> Some Erm.Predicate.Gt
  | Lexer.GE -> Some Erm.Predicate.Ge
  | _ -> None

let operand st =
  match peek st with
  | Some (Lexer.IDENT a) ->
      ignore (advance st);
      Ast.Attr a
  | Some (Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _) ->
      Ast.Scalar (literal_value st)
  | Some Lexer.LBRACE -> Ast.Set_lit (set_literal st)
  | Some (Lexer.EVIDENCE raw) ->
      ignore (advance st);
      Ast.Evidence_lit raw
  | Some t -> fail "expected an operand, got %s" (Lexer.token_to_string t)
  | None -> fail "expected an operand, got end of query"

let rec pred st = or_pred st

and or_pred st =
  let left = and_pred st in
  if accept st Lexer.OR then Ast.Or (left, or_pred st) else left

and and_pred st =
  let left = unary_pred st in
  if accept st Lexer.AND then Ast.And (left, and_pred st) else left

and unary_pred st =
  match peek st with
  | Some Lexer.NOT ->
      ignore (advance st);
      Ast.Not (unary_pred st)
  | Some Lexer.LPAREN ->
      ignore (advance st);
      let p = pred st in
      expect st Lexer.RPAREN;
      p
  | Some Lexer.TRUE ->
      ignore (advance st);
      Ast.True
  | _ -> atom_pred st

and atom_pred st =
  let left = operand st in
  match (left, peek st) with
  | Ast.Attr a, Some Lexer.IS ->
      ignore (advance st);
      Ast.Is (a, set_literal st)
  | _, Some t -> (
      match cmp_of_token t with
      | Some cmp ->
          ignore (advance st);
          Ast.Cmp (cmp, left, operand st)
      | None ->
          fail "expected IS or a comparison, got %s" (Lexer.token_to_string t))
  | _, None -> fail "dangling operand at end of query"

let threshold st =
  let atom () =
    let field =
      match advance st with
      | Lexer.SN -> Erm.Threshold.Sn
      | Lexer.SP -> Erm.Threshold.Sp
      | t -> fail "expected SN or SP, got %s" (Lexer.token_to_string t)
    in
    let op =
      match advance st with
      | Lexer.GT -> Erm.Threshold.Gt
      | Lexer.GE -> Erm.Threshold.Ge
      | Lexer.LT -> Erm.Threshold.Lt
      | Lexer.LE -> Erm.Threshold.Le
      | Lexer.EQ -> Erm.Threshold.Eq
      | t -> fail "expected a comparison, got %s" (Lexer.token_to_string t)
    in
    let bound =
      match advance st with
      | Lexer.FLOAT f -> f
      | Lexer.INT n -> float_of_int n
      | t -> fail "expected a number, got %s" (Lexer.token_to_string t)
    in
    Erm.Threshold.Cmp (field, op, bound)
  in
  let rec go acc = if accept st Lexer.AND then go (Erm.Threshold.Both (acc, atom ())) else acc in
  go (atom ())

let columns st =
  if accept st Lexer.STAR then None
  else
    let rec go acc =
      match advance st with
      | Lexer.IDENT c ->
          if accept st Lexer.COMMA then go (c :: acc)
          else Some (List.rev (c :: acc))
      | t -> fail "expected a column name, got %s" (Lexer.token_to_string t)
    in
    go []

let rec query st =
  let left = term st in
  if accept st Lexer.UNION then Ast.Union (left, query st)
  else if accept st Lexer.INTERSECT then Ast.Intersect (left, query st)
  else if accept st Lexer.EXCEPT then Ast.Except (left, query st)
  else left

and term st =
  let base =
    if accept st Lexer.SELECT then begin
      let cols = columns st in
      expect st Lexer.FROM;
      let from = joinable st in
      let where = if accept st Lexer.WHERE then pred st else Ast.True in
      let thr =
        if accept st Lexer.WITH then threshold st else Erm.Threshold.Always
      in
      Ast.Select { cols; from; where; threshold = thr }
    end
    else joinable st
  in
  ranked st base

(* Optional trailing ORDER BY SN|SP [ASC|DESC] [LIMIT k] / bare LIMIT k. *)
and ranked st base =
  if accept st Lexer.ORDER then begin
    expect st Lexer.BY;
    let by =
      match advance st with
      | Lexer.SN -> Erm.Threshold.Sn
      | Lexer.SP -> Erm.Threshold.Sp
      | t -> fail "expected SN or SP after ORDER BY, got %s" (Lexer.token_to_string t)
    in
    let ascending =
      if accept st Lexer.ASC then true
      else begin
        ignore (accept st Lexer.DESC);
        false
      end
    in
    let limit = limit_clause st in
    Ast.Ranked { from = base; by; ascending; limit }
  end
  else
    match limit_clause st with
    | Some _ as limit ->
        Ast.Ranked { from = base; by = Erm.Threshold.Sn; ascending = false; limit }
    | None -> base

and limit_clause st =
  if accept st Lexer.LIMIT then
    match advance st with
    | Lexer.INT k when k >= 0 -> Some k
    | t -> fail "expected a count after LIMIT, got %s" (Lexer.token_to_string t)
  else None

and joinable st =
  let rec loop left =
    if accept st Lexer.JOIN then begin
      let right = atom st in
      expect st Lexer.ON;
      let on = pred st in
      let thr =
        if accept st Lexer.WITH then threshold st else Erm.Threshold.Always
      in
      loop (Ast.Join { left; right; on; threshold = thr })
    end
    else if accept st Lexer.TIMES then loop (Ast.Product (left, atom st))
    else left
  in
  loop (atom st)

and atom st =
  let base =
    match advance st with
    | Lexer.IDENT name -> Ast.Rel name
    | Lexer.LPAREN ->
        let q = query st in
        expect st Lexer.RPAREN;
        q
    | t -> fail "expected a relation or (…), got %s" (Lexer.token_to_string t)
  in
  if accept st Lexer.PREFIX then
    match advance st with
    | Lexer.IDENT prefix -> Ast.Prefixed { from = base; prefix }
    | t -> fail "expected a prefix identifier, got %s" (Lexer.token_to_string t)
  else base

let run_parser f input =
  let tokens =
    try Lexer.tokenize input
    with Lexer.Lex_error { position; message } ->
      fail "lexical error at offset %d: %s" position message
  in
  let st = { tokens } in
  let result = f st in
  match st.tokens with
  | [] -> result
  | t :: _ -> fail "trailing input at %s" (Lexer.token_to_string t)

let parse input = run_parser query input
let parse_pred input = run_parser pred input
