(** Exact rational arithmetic over native integers with overflow checking.

    Masses in Dempster-Shafer combination are products and normalized sums
    of rationals; the paper's worked example (§2.2) produces fractions such
    as [3/7] and [2/21] which cannot be compared exactly in floating point.
    This module provides a small, dependency-free rational type used to
    instantiate the {!Dst.Mass.Make} functor in tests, so the paper's
    numbers are checked exactly rather than within an epsilon.

    All operations normalize (gcd-reduced, positive denominator) and raise
    {!Overflow} if an intermediate product would exceed the native integer
    range, rather than silently wrapping. *)

type t
(** A rational number [num/den] in lowest terms with [den > 0]. *)

exception Overflow
(** Raised when an operation would overflow native integer arithmetic. *)

exception Division_by_zero
(** Raised by {!div} and {!make} when the denominator is zero. *)

val make : int -> int -> t
(** [make num den] is the rational [num/den] in lowest terms.
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
(** [of_int n] is the rational [n/1]. *)

val zero : t
val one : t

val num : t -> int
(** Numerator of the normalized representation. *)

val den : t -> int
(** Denominator of the normalized representation; always positive. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is {!zero}. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t

val compare : t -> t -> int
(** Total order; exact (no overflow for comparisons of reduced values
    within range — falls back to cross multiplication with checks). *)

val equal : t -> t -> bool
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool

val to_float : t -> float

val of_float_dyadic : float -> t
(** Exact conversion of a finite float whose representation fits native
    integers (used for converting decimal literals like [0.25]).
    @raise Overflow if the float's exact dyadic expansion does not fit.
    @raise Invalid_argument on nan/infinite input. *)

val pp : Format.formatter -> t -> unit
(** Prints [n/d], or just [n] when [d = 1]. *)

val to_string : t -> string
