(* Exact rationals over native ints with explicit overflow detection.
   Intermediate products use a checked multiply: native ints are 63-bit,
   so products of operands up to ~2^31 are always safe; larger operands go
   through a division-based check. *)

type t = { num : int; den : int }

exception Overflow
exception Division_by_zero

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let checked_add a b =
  let s = a + b in
  (* Overflow iff operands share a sign and the sum's sign differs. *)
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow else s

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let normalize num den =
  if den = 0 then raise Division_by_zero
  else if num = 0 then zero
  else
    let s = if den < 0 then -1 else 1 in
    if num = min_int || den = min_int then raise Overflow
    else
      let num = s * num and den = s * den in
      let g = gcd (abs num) den in
      { num = num / g; den = den / g }

let make num den = normalize num den
let of_int n = { num = n; den = 1 }
let num t = t.num
let den t = t.den

let add a b =
  (* Use gcd of denominators to keep intermediates small. *)
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  let n = checked_add (checked_mul a.num db) (checked_mul b.num da) in
  normalize n (checked_mul a.den db)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce first to delay overflow. *)
  let g1 = gcd (abs a.num) b.den and g2 = gcd (abs b.num) a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  let n = checked_mul (a.num / g1) (b.num / g2) in
  let d = checked_mul (a.den / g2) (b.den / g1) in
  normalize n d

let inv a =
  if a.num = 0 then raise Division_by_zero
  else if a.num < 0 then { num = -a.den; den = -a.num }
  else { num = a.den; den = a.num }

let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }

let sign a = compare a.num 0
let is_zero a = a.num = 0

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den.
     Denominators are positive so the direction is preserved. *)
  match (sign a, sign b) with
  | -1, (0 | 1) -> -1
  | 0, 0 -> 0
  | 0, 1 -> -1
  | 0, -1 -> 1
  | 1, (-1 | 0) -> 1
  | _ ->
      let lhs = checked_mul a.num b.den and rhs = checked_mul b.num a.den in
      Stdlib.compare lhs rhs

let equal a b = a.num = b.num && a.den = b.den
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b
let to_float a = float_of_int a.num /. float_of_int a.den

let of_float_dyadic f =
  let open Stdlib in
  if not (Float.is_finite f) then invalid_arg "Q.of_float_dyadic: not finite"
  else begin
    let mantissa, exponent = Float.frexp f in
    (* mantissa * 2^53 is an integer for any finite float. *)
    let scaled = Float.ldexp mantissa 53 in
    if Float.abs scaled >= Float.ldexp 1.0 62 then raise Overflow
    else
      let n = int_of_float scaled in
      let e = exponent - 53 in
      if e >= 0 then begin
        if e > 61 then raise Overflow
        else normalize (checked_mul n (1 lsl e)) 1
      end
      else begin
        let e = -e in
        if e > 61 then begin
          (* Strip trailing zero bits of the mantissa first. *)
          let rec strip n e =
            if n <> 0 && n land 1 = 0 && e > 61 then strip (n asr 1) (e - 1)
            else (n, e)
          in
          let n, e = strip n e in
          if e > 61 then raise Overflow else normalize n (1 lsl e)
        end
        else normalize n (1 lsl e)
      end
  end

let pp ppf a =
  if Stdlib.( = ) a.den 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
