lib/qarith/q.ml: Float Format Stdlib
