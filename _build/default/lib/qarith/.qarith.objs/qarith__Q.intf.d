lib/qarith/q.mli: Format
