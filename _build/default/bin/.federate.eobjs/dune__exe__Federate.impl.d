bin/federate.ml: Arg Cmd Cmdliner Erm Format Integration List Manpage Printf Query Term
