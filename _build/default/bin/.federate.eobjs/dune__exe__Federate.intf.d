bin/federate.mli:
