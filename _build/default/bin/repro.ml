(* Regenerates every numeric artifact of the paper and diffs it against
   the expected values hard-coded from the text. Exit status 0 iff all
   artifacts match. Output is the source for EXPERIMENTS.md. *)

let failures = ref 0

let section title =
  Printf.printf "\n=== %s ===\n" title

let verdict what ok =
  if not ok then incr failures;
  Printf.printf "[%s] %s\n" (if ok then "OK" else "FAIL") what

let show_relation title r = print_string (Erm.Render.to_string ~title r)

let check_table name expected actual =
  show_relation (name ^ " (computed)") actual;
  verdict (name ^ " matches the paper") (Erm.Relation.equal expected actual)

let () =
  section "Section 2.1 — mass, belief and plausibility (wok's speciality)";
  let m1 = Paperdata.wok_m1 in
  Printf.printf "m1 = %s\n" (Erm.Render.evidence_to_string m1);
  let chs = Dst.Vset.of_strings [ "ca"; "hu"; "si" ] in
  let bel = Dst.Mass.F.bel m1 chs and pls = Dst.Mass.F.pls m1 chs in
  Printf.printf "Bel({ca,hu,si}) = %g (paper: 5/6 = %g)\n" bel (5.0 /. 6.0);
  Printf.printf "Pls({ca,hu,si}) = %g (paper: 1)\n" pls;
  verdict "Bel = 5/6" (Float.abs (bel -. (5.0 /. 6.0)) < 1e-9);
  verdict "Pls = 1" (Float.abs (pls -. 1.0) < 1e-9);

  section "Section 2.2 — Dempster's rule of combination";
  let m2 = Paperdata.wok_m2 in
  Printf.printf "m2 = %s\n" (Erm.Render.evidence_to_string m2);
  let kappa = Dst.Mass.F.conflict m1 m2 in
  let combined = Dst.Mass.F.combine m1 m2 in
  Printf.printf "kappa = %g (paper: 1/8 = 0.125)\n" kappa;
  Printf.printf "m1 (+) m2 = %s\n" (Erm.Render.evidence_to_string combined);
  Printf.printf "paper:      %s\n"
    (Erm.Render.evidence_to_string Paperdata.wok_combined);
  Printf.printf
    "(paper fractions: ca=3/7, hu=1/3, {ca,hu}=2/21, {hu,si}=2/21, ~=1/21)\n";
  verdict "kappa = 1/8" (Float.abs (kappa -. 0.125) < 1e-9);
  verdict "combination matches the paper's fractions"
    (Dst.Mass.F.equal combined Paperdata.wok_combined);

  section "Table 1 — source relations (inputs)";
  show_relation "R_A" Paperdata.r_a;
  show_relation "R_B" Paperdata.r_b;

  section "Table 2 — selection: speciality is {si}, sn > 0";
  check_table "Table 2" Paperdata.table2
    (Erm.Ops.select
       ~threshold:(Erm.Threshold.sn_gt 0.0)
       (Erm.Predicate.is_values "speciality" [ "si" ])
       Paperdata.r_a);

  section "Table 3 — compound selection: speciality is {mu} and rating is {ex}";
  check_table "Table 3" Paperdata.table3
    (Erm.Ops.select
       ~threshold:(Erm.Threshold.sn_gt 0.0)
       Erm.Predicate.(
         is_values "speciality" [ "mu" ] &&& is_values "rating" [ "ex" ])
       Paperdata.r_a);

  section "Table 4 — extended union R_A (+) R_B (Dempster merge by rname)";
  check_table "Table 4" Paperdata.table4
    (Erm.Ops.union Paperdata.r_a Paperdata.r_b);

  section "Table 5 — projection on rname, phone, speciality, rating";
  check_table "Table 5" Paperdata.table5
    (Erm.Ops.project Paperdata.table5_attrs Paperdata.r_a);

  section "Figure 1 — full pipeline via the query language";
  let env = [ ("ra", Paperdata.r_a); ("rb", Paperdata.r_b) ] in
  let q =
    "SELECT * FROM (ra UNION rb) WHERE speciality IS {mu} AND rating IS {ex} \
     WITH SN > 0.5"
  in
  Printf.printf "query: %s\n" q;
  let result = Query.Eval.run env q in
  show_relation "result" result;
  verdict "query returns mehl and ashiana with sn > 0.5"
    (Erm.Relation.cardinal result = 2
    && Erm.Relation.mem result [ Dst.Value.string "mehl" ]
    && Erm.Relation.mem result [ Dst.Value.string "ashiana" ]);

  section "Figure 2 — manager and relationship relations (constructed data)";
  show_relation "M_A" Paperdata.m_a;
  show_relation "M_B" Paperdata.m_b;
  let m_merged = Erm.Ops.union Paperdata.m_a Paperdata.m_b in
  show_relation "M_A (+) M_B" m_merged;
  verdict "chen's position = [head-chef^5/6; manager^1/6]"
    (Dst.Mass.F.equal
       (Erm.Etuple.evidence Paperdata.m_schema
          (Erm.Relation.find m_merged [ Dst.Value.string "chen" ])
          "position")
       Paperdata.chen_position_expected);
  let rm_merged = Erm.Ops.union Paperdata.rm_a Paperdata.rm_b in
  show_relation "RM_A (+) RM_B" rm_merged;
  let fig2 =
    Query.Eval.run
      [ ("rm", rm_merged); ("m", m_merged) ]
      "SELECT * FROM (rm JOIN m ON manager = mname) WHERE position IS \
       {head-chef} WITH SN > 0.5"
  in
  show_relation "restaurants run by a likely head-chef" fig2;
  verdict "garden and wok qualify" (Erm.Relation.cardinal fig2 = 2);

  section "Uncertainty measures — integration adds information";
  let mean_nonspecificity r =
    let schema = Erm.Relation.schema r in
    let total = ref 0.0 and count = ref 0 in
    Erm.Relation.iter
      (fun t ->
        List.iter
          (fun attr ->
            if Erm.Attr.is_evidential attr then begin
              total :=
                !total
                +. Dst.Measures.nonspecificity
                     (Erm.Etuple.evidence schema t (Erm.Attr.name attr));
              incr count
            end)
          (Erm.Schema.nonkey schema))
      r;
    !total /. float_of_int !count
  in
  let n_a = mean_nonspecificity Paperdata.r_a in
  let n_b = mean_nonspecificity Paperdata.r_b in
  let n_merged = mean_nonspecificity (Erm.Ops.union Paperdata.r_a Paperdata.r_b) in
  Printf.printf
    "mean evidential nonspecificity (bits): R_A %.3f, R_B %.3f, merged %.3f\n"
    n_a n_b n_merged;
  verdict "merging reduces imprecision below both sources"
    (n_merged < n_a && n_merged < n_b);

  section "Theorem 1 — closure on the paper data";
  let closure_ok r = Erm.Relation.satisfies_cwa r in
  verdict "all operator results satisfy sn > 0"
    (List.for_all closure_ok
       [ Erm.Ops.union Paperdata.r_a Paperdata.r_b;
         Erm.Ops.select (Erm.Predicate.is_values "rating" [ "ex" ])
           Paperdata.r_a;
         Erm.Ops.project Paperdata.table5_attrs Paperdata.r_a ]);

  Printf.printf "\n%s\n"
    (if !failures = 0 then "ALL ARTIFACTS REPRODUCED"
     else Printf.sprintf "%d ARTIFACT(S) FAILED" !failures);
  exit (if !failures = 0 then 0 else 1)
