(* federate — integrate evidential relations from the command line.

     federate data/restaurants.erd --relations ra,rb --query \
       "SELECT rname FROM integrated WHERE rating IS {ex} WITH SN > 0.5"

   Loads .erd files, folds the named (union-compatible) relations with
   Dempster's rule via Integration.Multi, reports conflicts and source
   reliabilities, and optionally queries or saves the result. *)

open Cmdliner

let load_all files =
  List.concat_map
    (fun path ->
      List.map
        (fun r -> (Erm.Schema.name (Erm.Relation.schema r), r))
        (Erm.Io.load path))
    files

let pick_sources env = function
  | [] -> List.map (fun (n, r) -> (n, r)) env
  | names ->
      List.map
        (fun n ->
          match List.assoc_opt n env with
          | Some r -> (n, r)
          | None -> failwith (Printf.sprintf "no relation named %s" n))
        names

let run files relations discount name query csv out report_only =
  try
    let env = load_all files in
    if env = [] then failwith "no relations loaded; pass at least one .erd";
    let sources =
      List.map
        (fun (n, r) ->
          { Integration.Multi.source_name = n; source_relation = r })
        (pick_sources env relations)
    in
    let report = Integration.Multi.integrate ~discount sources in
    Format.printf "%a@." Integration.Multi.pp report;
    if not report_only then begin
      let integrated =
        Erm.Relation.map_tuples
          (fun t -> Some t)
          (Erm.Schema.rename_relation name
             (Erm.Relation.schema report.integrated))
          report.integrated
      in
      let render r =
        if csv then print_string (Erm.Render.to_csv r)
        else Erm.Render.print r
      in
      (match query with
      | Some text ->
          render (Query.Eval.run ((name, integrated) :: env) text)
      | None -> render integrated);
      match out with
      | Some path ->
          Erm.Io.save path [ integrated ];
          Printf.printf "wrote %s\n" path
      | None -> ()
    end;
    if report.conflicts = [] then Ok () else Ok ()
  with
  | Failure m | Sys_error m -> Error m
  | Erm.Io.Io_error { line; message } ->
      Error (Printf.sprintf "line %d: %s" line message)
  | Erm.Ops.Incompatible_schemas m -> Error m
  | Query.Parser.Parse_error m -> Error ("parse error: " ^ m)
  | Query.Eval.Eval_error m -> Error m
  | Integration.Multi.No_sources -> Error "no sources selected"

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.erd")

let relations_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "relations"; "r" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated relation names to integrate (default: every \
           relation found, in load order). They must be union-compatible.")

let discount_arg =
  Arg.(
    value & flag
    & info [ "discount" ]
        ~doc:
          "Estimate each source's reliability from pairwise conflict and \
           $(b,α)-discount its evidence before merging. Avoids losing \
           tuples to total conflict at the cost of extra ignorance.")

let name_arg =
  Arg.(
    value & opt string "integrated"
    & info [ "name" ] ~docv:"NAME"
        ~doc:"Name for the integrated relation (also its query alias).")

let query_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "query"; "q" ] ~docv:"QUERY"
        ~doc:
          "Evaluate a query instead of printing the integrated relation. \
           All loaded relations plus $(b,NAME) are in scope.")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Render results as CSV.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE"
        ~doc:"Also write the integrated relation to $(docv) (.erd format).")

let report_arg =
  Arg.(
    value & flag
    & info [ "report-only" ]
        ~doc:"Print only the integration report (conflicts, reliabilities).")

let term =
  Term.(
    const run $ files_arg $ relations_arg $ discount_arg $ name_arg
    $ query_arg $ csv_arg $ out_arg $ report_arg)

let cmd =
  let doc = "integrate evidential (.erd) relations with Dempster's rule" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Implements the database-integration operator of Lim, Srivastava \
         and Shekhar (ICDE 1994): key-matched tuples from every source are \
         merged attribute-by-attribute with Dempster's rule of \
         combination; tuple membership pairs combine on the boolean \
         frame; total conflicts are reported to the integrator rather \
         than resolved silently.";
      `S Manpage.s_examples;
      `P "Integrate the sample data and query it:";
      `Pre
        "  federate data/restaurants.erd -r ra,rb \\\\\n\
        \    -q \"SELECT rname FROM integrated WHERE rating IS {ex} WITH SN \
         > 0.5\"" ]
  in
  Cmd.v (Cmd.info "federate" ~version:"1.0" ~doc ~man)
    (Term.map
       (function
         | Ok () -> 0
         | Error m ->
             Printf.eprintf "federate: %s\n" m;
             1)
       term)

let () = exit (Cmd.eval' cmd)
