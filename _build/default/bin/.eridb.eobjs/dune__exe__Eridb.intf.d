bin/eridb.mli:
