bin/eridb.ml: Array Dst Erm Format In_channel Integration List Printf Query Store String Sys Unix
