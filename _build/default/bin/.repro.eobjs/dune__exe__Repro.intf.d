bin/repro.mli:
