bin/repro.ml: Dst Erm Float List Paperdata Printf Query
