(* Combination rules: Dempster's rule (worked examples, algebraic
   properties, conflict handling) and the extension rules (Yager,
   Dubois-Prade, averaging, disjunctive), cross-checked between the
   float and exact-rational functor instances. *)

module V = Dst.Value
module Vs = Dst.Vset
module D = Dst.Domain
module M = Dst.Mass.F
module Mq = Dst.Mass.Make (Dst.Num.Rational)
module Q = Qarith.Q

let feq = Alcotest.float 1e-9
let mass_t = Alcotest.testable M.pp M.equal

let colors = D.of_strings "colors" [ "red"; "green"; "blue" ]
let red = Vs.of_strings [ "red" ]
let green = Vs.of_strings [ "green" ]
let blue = Vs.of_strings [ "blue" ]
let red_green = Vs.of_strings [ "red"; "green" ]
let omega = D.values colors

(* --- Dempster's rule ------------------------------------------------ *)

let test_simple_combination () =
  (* Two simple support functions for {red}: classic reinforcement. *)
  let m1 = M.simple_support colors red 0.6 in
  let m2 = M.simple_support colors red 0.7 in
  let c = M.combine m1 m2 in
  (* m(red) = 0.6·0.7 + 0.6·0.3 + 0.4·0.7 = 0.88, m(Ω) = 0.12; κ = 0. *)
  Alcotest.check feq "reinforced belief" 0.88 (M.mass c red);
  Alcotest.check feq "remaining ignorance" 0.12 (M.mass c omega);
  Alcotest.check feq "no conflict" 0.0 (M.conflict m1 m2)

let test_conflict_normalization () =
  let m1 = M.make colors [ (red, 0.9); (omega, 0.1) ] in
  let m2 = M.make colors [ (green, 0.8); (omega, 0.2) ] in
  Alcotest.check feq "kappa = 0.72" 0.72 (M.conflict m1 m2);
  let c = M.combine m1 m2 in
  (* red: 0.9·0.2 = 0.18; green: 0.1·0.8 = 0.08; Ω: 0.02; /0.28 *)
  Alcotest.check feq "red" (0.18 /. 0.28) (M.mass c red);
  Alcotest.check feq "green" (0.08 /. 0.28) (M.mass c green);
  Alcotest.check feq "omega" (0.02 /. 0.28) (M.mass c omega)

let test_total_conflict () =
  let m1 = M.certain colors (V.string "red") in
  let m2 = M.certain colors (V.string "green") in
  Alcotest.check feq "kappa = 1" 1.0 (M.conflict m1 m2);
  Alcotest.check_raises "combine raises" M.Total_conflict (fun () ->
      ignore (M.combine m1 m2));
  Alcotest.(check bool) "combine_opt returns None" true
    (M.combine_opt m1 m2 = None)

let test_combine_opt_reports_kappa () =
  let m1 = M.make colors [ (red, 0.5); (omega, 0.5) ] in
  let m2 = M.make colors [ (green, 0.5); (omega, 0.5) ] in
  match M.combine_opt m1 m2 with
  | Some (_, kappa) -> Alcotest.check feq "kappa = 0.25" 0.25 kappa
  | None -> Alcotest.fail "combination should succeed"

let test_vacuous_neutral () =
  let m = M.make colors [ (red, 0.4); (red_green, 0.6) ] in
  Alcotest.check mass_t "m ⊕ vacuous = m" m (M.combine m (M.vacuous colors));
  Alcotest.check mass_t "vacuous ⊕ m = m" m (M.combine (M.vacuous colors) m)

let test_commutative_associative () =
  let m1 = M.make colors [ (red, 0.5); (omega, 0.5) ] in
  let m2 = M.make colors [ (red_green, 0.7); (omega, 0.3) ] in
  let m3 = M.make colors [ (green, 0.4); (omega, 0.6) ] in
  Alcotest.check mass_t "commutes" (M.combine m1 m2) (M.combine m2 m1);
  Alcotest.check mass_t "associates"
    (M.combine (M.combine m1 m2) m3)
    (M.combine m1 (M.combine m2 m3));
  Alcotest.check mass_t "combine_many folds left"
    (M.combine (M.combine m1 m2) m3)
    (M.combine_many [ m1; m2; m3 ])

let test_frame_mismatch () =
  let other = D.of_strings "other" [ "x"; "y" ] in
  let m1 = M.vacuous colors and m2 = M.vacuous other in
  Alcotest.(check bool)
    "frame mismatch raises" true
    (match M.combine m1 m2 with
    | _ -> false
    | exception M.Frame_mismatch _ -> true)

let test_certain_absorbs () =
  (* Combining with certainty on a plausible set yields certainty. *)
  let m = M.make colors [ (red, 0.5); (red_green, 0.5) ] in
  let c = M.combine m (M.certain colors (V.string "red")) in
  Alcotest.check feq "certainty absorbs" 1.0 (M.mass c red)

(* --- Exact rational cross-check ------------------------------------ *)

let to_rational m =
  Mq.make (M.frame m)
    (List.map (fun (s, x) -> (s, Q.of_float_dyadic x)) (M.focals m))

let test_exact_matches_float () =
  (* Dyadic masses convert exactly, so the two instances must agree
     to float rounding. *)
  let m1 = M.make colors [ (red, 0.5); (red_green, 0.25); (omega, 0.25) ] in
  let m2 = M.make colors [ (green, 0.375); (omega, 0.625) ] in
  let float_result = M.combine m1 m2 in
  let exact_result = Mq.combine (to_rational m1) (to_rational m2) in
  List.iter
    (fun (set, x) ->
      Alcotest.check feq
        ("focal " ^ Vs.to_string set)
        (Q.to_float (Mq.mass exact_result set))
        x)
    (M.focals float_result);
  Alcotest.(check int) "same focal count" (Mq.focal_count exact_result)
    (M.focal_count float_result)

let test_exact_paper_example () =
  let frame = M.frame Paperdata.wok_m1 in
  let m1 = Mq.make frame Paperdata.sec22_m1_exact in
  let m2 = Mq.make frame Paperdata.sec22_m2_exact in
  let c = Mq.combine m1 m2 in
  Alcotest.(check bool)
    "exact §2.2" true
    (Mq.equal c (Mq.make frame Paperdata.sec22_expected_exact));
  (* The paper's observation: singleton {hu} gained mass, {ca} shrank. *)
  Alcotest.(check bool)
    "hu gained" true
    Q.(Mq.mass c (Vs.of_strings [ "hu" ]) > Mq.mass m2 (Vs.of_strings [ "hu" ]));
  Alcotest.(check bool)
    "ca shrank" true
    Q.(Mq.mass c (Vs.of_strings [ "ca" ]) < Mq.mass m1 (Vs.of_strings [ "ca" ]))

(* --- Alternative rules --------------------------------------------- *)

let m_red = M.make colors [ (red, 0.9); (omega, 0.1) ]
let m_green = M.make colors [ (green, 0.8); (omega, 0.2) ]

let test_yager () =
  let y = M.combine_yager m_red m_green in
  (* Unnormalized products: red 0.18, green 0.08, Ω 0.02 + κ 0.72. *)
  Alcotest.check feq "red unnormalized" 0.18 (M.mass y red);
  Alcotest.check feq "green unnormalized" 0.08 (M.mass y green);
  Alcotest.check feq "conflict goes to omega" 0.74 (M.mass y omega);
  (* Total conflict becomes the vacuous assignment. *)
  let v =
    M.combine_yager
      (M.certain colors (V.string "red"))
      (M.certain colors (V.string "green"))
  in
  Alcotest.(check bool) "total conflict -> vacuous" true (M.is_vacuous v)

let test_dubois_prade () =
  let d = M.combine_dubois_prade m_red m_green in
  Alcotest.check feq "red" 0.18 (M.mass d red);
  Alcotest.check feq "green" 0.08 (M.mass d green);
  Alcotest.check feq "conflict goes to the union" 0.72 (M.mass d red_green);
  Alcotest.check feq "omega keeps only its own product" 0.02 (M.mass d omega);
  (* Never raises, even on total conflict. *)
  let t =
    M.combine_dubois_prade
      (M.certain colors (V.string "red"))
      (M.certain colors (V.string "green"))
  in
  Alcotest.check feq "disjunction of certainties" 1.0 (M.mass t red_green)

let test_average () =
  let a = M.combine_average m_red m_green in
  Alcotest.check feq "red averaged" 0.45 (M.mass a red);
  Alcotest.check feq "green averaged" 0.4 (M.mass a green);
  Alcotest.check feq "omega averaged" 0.15 (M.mass a omega);
  Alcotest.check mass_t "idempotent" m_red (M.combine_average m_red m_red)

let test_disjunctive () =
  let d = M.combine_disjunctive m_red m_green in
  (* Products accumulate on unions: red∪green 0.72, red∪Ω=Ω 0.18,
     green∪Ω=Ω... red·Ω = 0.9·0.2 = 0.18 → Ω; Ω·green = 0.08 → Ω;
     Ω·Ω = 0.02 → Ω. *)
  Alcotest.check feq "union focal" 0.72 (M.mass d red_green);
  Alcotest.check feq "omega" 0.28 (M.mass d omega);
  Alcotest.check feq "no singleton focals" 0.0 (M.mass d red)

let test_rules_preserve_mass () =
  let total m =
    List.fold_left (fun acc (_, x) -> acc +. x) 0.0 (M.focals m)
  in
  List.iter
    (fun rule -> Alcotest.check feq "sums to one" 1.0 (total (rule m_red m_green)))
    [ M.combine; M.combine_yager; M.combine_dubois_prade; M.combine_average;
      M.combine_disjunctive ]

(* Dempster reduces uncertainty relative to either input on agreeing
   evidence: the paper's "general trend that large focal elements have
   smaller mass after combination". *)
let test_uncertainty_reduction () =
  let m1 = M.make colors [ (red_green, 0.6); (omega, 0.4) ] in
  let m2 = M.make colors [ (red, 0.5); (omega, 0.5) ] in
  let c = M.combine m1 m2 in
  Alcotest.(check bool) "omega mass shrinks" true
    (M.mass c omega < M.mass m1 omega && M.mass c omega < M.mass m2 omega);
  Alcotest.(check bool) "Bel(red) grows" true
    (M.bel c red >= M.bel m2 red)

let test_blue_untouched () =
  (* No focal mentions blue, so Pls(blue) comes only from Ω. *)
  let c = M.combine m_red m_green in
  Alcotest.check feq "Bel(blue) = 0" 0.0 (M.bel c blue);
  Alcotest.check feq "Pls(blue) = m(omega)" (M.mass c omega) (M.pls c blue)

let () =
  Alcotest.run "combine"
    [ ( "dempster",
        [ Alcotest.test_case "simple support reinforcement" `Quick
            test_simple_combination;
          Alcotest.test_case "conflict normalization" `Quick
            test_conflict_normalization;
          Alcotest.test_case "total conflict" `Quick test_total_conflict;
          Alcotest.test_case "combine_opt kappa" `Quick
            test_combine_opt_reports_kappa;
          Alcotest.test_case "vacuous is neutral" `Quick test_vacuous_neutral;
          Alcotest.test_case "commutative and associative" `Quick
            test_commutative_associative;
          Alcotest.test_case "frame mismatch" `Quick test_frame_mismatch;
          Alcotest.test_case "certainty absorbs" `Quick test_certain_absorbs;
          Alcotest.test_case "uncertainty reduction" `Quick
            test_uncertainty_reduction;
          Alcotest.test_case "unmentioned hypotheses" `Quick
            test_blue_untouched ] );
      ( "exact",
        [ Alcotest.test_case "rational matches float" `Quick
            test_exact_matches_float;
          Alcotest.test_case "paper §2.2 exact" `Quick test_exact_paper_example
        ] );
      ( "other-rules",
        [ Alcotest.test_case "yager" `Quick test_yager;
          Alcotest.test_case "dubois-prade" `Quick test_dubois_prade;
          Alcotest.test_case "average" `Quick test_average;
          Alcotest.test_case "disjunctive" `Quick test_disjunctive;
          Alcotest.test_case "all rules preserve total mass" `Quick
            test_rules_preserve_mass ] ) ]
