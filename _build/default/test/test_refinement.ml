(* Frame refinements: validation, image/reduction operators, vacuous
   extension and coarsening of evidence, composition, and the Bel/Pls
   preservation laws. *)

module V = Dst.Value
module Vs = Dst.Vset
module D = Dst.Domain
module M = Dst.Mass.F
module R = Dst.Refinement

let feq = Alcotest.float 1e-9
let vset = Alcotest.testable Vs.pp Vs.equal

let coarse = D.of_strings "cuisine" [ "chinese"; "indian"; "western" ]

let fine =
  D.of_strings "speciality" [ "hu"; "si"; "ca"; "mu"; "am"; "it" ]

let refining =
  R.of_assoc ~coarse ~fine
    [ ("chinese", [ "hu"; "si"; "ca" ]);
      ("indian", [ "mu" ]);
      ("western", [ "am"; "it" ]) ]

let test_validation () =
  let fails f =
    Alcotest.(check bool)
      "raises Refinement_error" true
      (match f () with _ -> false | exception R.Refinement_error _ -> true)
  in
  (* empty image *)
  fails (fun () ->
      R.of_assoc ~coarse ~fine
        [ ("chinese", []); ("indian", [ "mu" ]);
          ("western", [ "hu"; "si"; "ca"; "am"; "it" ]) ]);
  (* overlapping images *)
  fails (fun () ->
      R.of_assoc ~coarse ~fine
        [ ("chinese", [ "hu"; "si" ]); ("indian", [ "si"; "mu" ]);
          ("western", [ "ca"; "am"; "it" ]) ]);
  (* non-covering images *)
  fails (fun () ->
      R.of_assoc ~coarse ~fine
        [ ("chinese", [ "hu"; "si"; "ca" ]); ("indian", [ "mu" ]);
          ("western", [ "am" ]) ]);
  (* image escapes the fine frame *)
  fails (fun () ->
      R.of_assoc ~coarse ~fine
        [ ("chinese", [ "hu"; "si"; "ca"; "sushi" ]); ("indian", [ "mu" ]);
          ("western", [ "am"; "it" ]) ]);
  (* missing coarse value *)
  fails (fun () ->
      R.of_assoc ~coarse ~fine [ ("chinese", [ "hu"; "si"; "ca" ]) ])

let test_image_and_reductions () =
  Alcotest.check vset "image of {chinese}"
    (Vs.of_strings [ "ca"; "hu"; "si" ])
    (R.image refining (Vs.of_strings [ "chinese" ]));
  Alcotest.check vset "image of {chinese, indian}"
    (Vs.of_strings [ "ca"; "hu"; "si"; "mu" ])
    (R.image refining (Vs.of_strings [ "chinese"; "indian" ]));
  Alcotest.check vset "outer reduction of {hu}"
    (Vs.of_strings [ "chinese" ])
    (R.outer_reduction refining (Vs.of_strings [ "hu" ]));
  Alcotest.check vset "outer reduction of {hu, am}"
    (Vs.of_strings [ "chinese"; "western" ])
    (R.outer_reduction refining (Vs.of_strings [ "hu"; "am" ]));
  Alcotest.check vset "inner reduction needs full coverage"
    (Vs.of_strings [ "indian" ])
    (R.inner_reduction refining (Vs.of_strings [ "mu"; "hu" ]));
  Alcotest.check vset "inner reduction of a full image"
    (Vs.of_strings [ "chinese"; "indian" ])
    (R.inner_reduction refining (Vs.of_strings [ "hu"; "si"; "ca"; "mu" ]))

let test_refine_preserves_belief () =
  let m =
    M.make coarse
      [ (Vs.of_strings [ "chinese" ], 0.5);
        (Vs.of_strings [ "chinese"; "indian" ], 0.3);
        (D.values coarse, 0.2) ]
  in
  let fine_m = R.refine refining m in
  Alcotest.check feq "total mass preserved" 1.0
    (List.fold_left (fun acc (_, x) -> acc +. x) 0.0 (M.focals fine_m));
  (* Bel on images equals Bel on originals. *)
  List.iter
    (fun set ->
      let set = Vs.of_strings set in
      Alcotest.check feq
        (Format.asprintf "Bel preserved on %a" Vs.pp set)
        (M.bel m set)
        (M.bel fine_m (R.image refining set)))
    [ [ "chinese" ]; [ "indian" ]; [ "chinese"; "indian" ];
      [ "chinese"; "western" ] ];
  (* Ω maps to Ω: vacuous stays vacuous. *)
  Alcotest.(check bool) "vacuous refines to vacuous" true
    (M.is_vacuous (R.refine refining (M.vacuous coarse)))

let test_coarsen () =
  let fine_m =
    M.make fine
      [ (Vs.of_strings [ "hu"; "si" ], 0.6);
        (Vs.of_strings [ "mu"; "am" ], 0.4) ]
  in
  let coarse_m = R.coarsen refining fine_m in
  Alcotest.check feq "{hu,si} coarsens to {chinese}" 0.6
    (M.mass coarse_m (Vs.of_strings [ "chinese" ]));
  Alcotest.check feq "{mu,am} coarsens to {indian,western}" 0.4
    (M.mass coarse_m (Vs.of_strings [ "indian"; "western" ]));
  (* Coarsening can only widen plausibility. *)
  List.iter
    (fun set ->
      let cset = Vs.of_strings set in
      Alcotest.(check bool)
        (Format.asprintf "Pls does not shrink on %a" Vs.pp cset)
        true
        (M.pls coarse_m cset
        >= M.pls fine_m (R.image refining cset) -. 1e-9))
    [ [ "chinese" ]; [ "indian" ]; [ "western" ] ]

let test_refine_coarsen_roundtrip () =
  (* Coarse evidence pushed down and pulled back is unchanged: every
     refined focal is a union of images. *)
  let m =
    M.make coarse
      [ (Vs.of_strings [ "chinese" ], 0.7);
        (Vs.of_strings [ "indian"; "western" ], 0.3) ]
  in
  Alcotest.(check bool) "roundtrip identity" true
    (M.equal m (R.coarsen refining (R.refine refining m)))

let test_cross_granularity_combination () =
  (* The integration use case: one source reports at coarse granularity,
     the other at fine; refine the coarse one and combine. *)
  let coarse_report = M.simple_support coarse (Vs.of_strings [ "chinese" ]) 0.8 in
  let fine_report =
    M.make fine [ (Vs.of_strings [ "hu" ], 0.5); (D.values fine, 0.5) ]
  in
  let combined = M.combine (R.refine refining coarse_report) fine_report in
  Alcotest.(check bool) "hu is the best-supported singleton" true
    (V.equal (V.string "hu") (M.max_bel combined));
  Alcotest.check feq "no conflict between nested reports" 0.0
    (M.conflict (R.refine refining coarse_report) fine_report)

let test_compose () =
  let top = D.of_strings "origin" [ "asian"; "other" ] in
  let mid = refining in
  let top_to_coarse =
    R.of_assoc ~coarse:top ~fine:coarse
      [ ("asian", [ "chinese"; "indian" ]); ("other", [ "western" ]) ]
  in
  let composite = R.compose mid top_to_coarse in
  Alcotest.check vset "asian covers all asian specialities"
    (Vs.of_strings [ "ca"; "hu"; "si"; "mu" ])
    (R.image composite (Vs.of_strings [ "asian" ]));
  let m = M.certain top (V.string "asian") in
  Alcotest.(check bool) "refine through the composite" true
    (M.equal
       (R.refine composite m)
       (R.refine mid (R.refine top_to_coarse m)));
  let fails f =
    Alcotest.(check bool)
      "raises" true
      (match f () with _ -> false | exception R.Refinement_error _ -> true)
  in
  fails (fun () -> R.compose top_to_coarse mid)

let test_frame_checks () =
  let fails f =
    Alcotest.(check bool)
      "raises" true
      (match f () with _ -> false | exception R.Refinement_error _ -> true)
  in
  fails (fun () -> R.refine refining (M.vacuous fine));
  fails (fun () -> R.coarsen refining (M.vacuous coarse))

let () =
  Alcotest.run "refinement"
    [ ( "structure",
        [ Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "image and reductions" `Quick
            test_image_and_reductions;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "frame checks" `Quick test_frame_checks ] );
      ( "evidence",
        [ Alcotest.test_case "refine preserves belief" `Quick
            test_refine_preserves_belief;
          Alcotest.test_case "coarsen" `Quick test_coarsen;
          Alcotest.test_case "refine-coarsen roundtrip" `Quick
            test_refine_coarsen_roundtrip;
          Alcotest.test_case "cross-granularity combination" `Quick
            test_cross_granularity_combination ] ) ]
