(* A full-system scenario at moderate scale: three synthetic sources
   about the same 400 entities — one clean, one noisy re-observation,
   one with misaligned keys — are preprocessed, matched, merged
   (discounted and not), queried, summarized, persisted and reloaded.
   The point is cross-module invariants, not single-module behaviour. *)

module V = Dst.Value
module S = Dst.Support
module R = Workload.Rng
module G = Workload.Gen

let schema = G.schema ~definite:2 ~evidential:2 ~domain_size:10 "census"

(* Source 1: the reference observation. *)
let source1 = G.relation (R.create 1001) ~size:400 schema

(* Source 2: an independent re-observation of the same entities. *)
let source2 = G.reobserve (R.create 2002) source1

(* Source 3: same entities, keys prefixed differently (a source whose
   identifiers do not align), to exercise similarity matching. *)
let source3 =
  let re = G.reobserve (R.create 3003) source1 in
  Erm.Relation.fold
    (fun t acc ->
      let key =
        match Erm.Etuple.key t with
        | [ V.String k ] -> [ V.string ("ext-" ^ k) ]
        | other -> other
      in
      Erm.Relation.add acc
        (Erm.Etuple.make schema ~key ~cells:(Erm.Etuple.cells t)
           ~tm:(Erm.Etuple.tm t)))
    re (Erm.Relation.empty schema)

let merged = Integration.Merge.by_key source1 source2

let test_merge_scale () =
  Alcotest.(check int) "all 400 entities integrated" 400
    (Erm.Relation.cardinal merged.integrated);
  Alcotest.(check int) "every pair merged" 400 merged.merged_count;
  Alcotest.(check int) "no conflicts (omega floor)" 0
    (List.length merged.conflicts);
  Alcotest.(check bool) "CWA everywhere" true
    (Erm.Relation.satisfies_cwa merged.integrated)

let test_merge_sharpens () =
  (* Dempster combination reduces ignorance: the merged relation's
     pooled Ω mass on e0 must not exceed either source's. *)
  let omega_share r =
    let pooled = Erm.Summarize.pool_evidence r "e0" in
    Dst.Mass.F.mass pooled (Dst.Domain.values (Dst.Mass.F.frame pooled))
  in
  Alcotest.(check bool) "omega mass shrinks vs source1" true
    (omega_share merged.integrated <= omega_share source1 +. 1e-9);
  Alcotest.(check bool) "omega mass shrinks vs source2" true
    (omega_share merged.integrated <= omega_share source2 +. 1e-9)

let test_similarity_bridge () =
  (* Source 3's keys do not align; its definite attributes do. Match on
     them and merge the matching. *)
  let witnesses =
    [ Integration.Entity_id.exact_witness ~reliability:0.95 "a0";
      Integration.Entity_id.exact_witness ~reliability:0.95 "a1" ]
  in
  let matching =
    Integration.Entity_id.by_similarity ~threshold:0.9 ~witnesses
      merged.integrated source3
  in
  (* Definite cells are random "a0-<n>" strings with n < 1000: distinct
     entities rarely collide on both, and true pairs always match. *)
  Alcotest.(check bool) "most entities re-identified" true
    (List.length matching.matched > 350);
  let bridged = Integration.Merge.of_matching schema matching in
  Alcotest.(check int) "nothing lost overall" 400
    (Erm.Relation.cardinal bridged.integrated
    + List.length bridged.conflicts
    - bridged.right_only);
  Alcotest.(check bool) "CWA after the bridge" true
    (Erm.Relation.satisfies_cwa bridged.integrated)

let test_queries_consistent () =
  let env = [ ("db", merged.integrated) ] in
  let q =
    "SELECT k, e0 FROM db WHERE e0 IS {v0, v1, v2} WITH SN > 0.5 ORDER BY SN \
     DESC LIMIT 25"
  in
  let limited = Query.Eval.run env q in
  Alcotest.(check bool) "limit respected" true
    (Erm.Relation.cardinal limited <= 25);
  (* Every returned tuple must individually pass the threshold. *)
  Erm.Relation.iter
    (fun t ->
      if S.sn (Erm.Etuple.tm t) <= 0.5 then
        Alcotest.failf "tuple below threshold: %g" (S.sn (Erm.Etuple.tm t)))
    limited;
  (* The optimizer must agree at this scale too. *)
  let q2 =
    Query.Parser.parse
      "SELECT * FROM (SELECT * FROM db WHERE e0 IS {v3}) WHERE e1 IS {v4, \
       v5} WITH SP >= 0.3"
  in
  Alcotest.(check bool) "optimized = naive on the big relation" true
    (Erm.Relation.equal (Query.Eval.eval env q2)
       (Query.Plan.eval_optimized env q2))

let test_incremental_replay () =
  (* Replaying source2 observation by observation lands on the same
     store as the batch merge. *)
  let streamed =
    Integration.Incremental.absorb
      (Integration.Incremental.of_relation source1)
      source2
  in
  Alcotest.(check bool) "stream = batch" true
    (Erm.Relation.equal
       (Integration.Incremental.relation streamed)
       merged.integrated)

let test_summaries_scale () =
  let sn, sp = Erm.Summarize.cardinality_interval merged.integrated in
  Alcotest.(check bool) "interval brackets the count" true
    (0.0 < sn && sn <= sp +. 1e-9 && sp <= 400.0 +. 1e-9);
  let hist = Erm.Summarize.pignistic_histogram merged.integrated "e1" in
  Alcotest.(check (float 1e-6)) "histogram sums to 1" 1.0
    (List.fold_left (fun acc (_, p) -> acc +. p) 0.0 hist)

let test_index_at_scale () =
  let idx = Erm.Index.build merged.integrated "a0" in
  (* Probe with a value known to exist. *)
  let some_value =
    match Erm.Relation.tuples merged.integrated with
    | t :: _ -> Erm.Etuple.definite_value schema t "a0"
    | [] -> Alcotest.fail "empty relation"
  in
  let via_index = Erm.Index.select_eq idx merged.integrated some_value in
  let via_scan =
    Erm.Ops.select
      (Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field "a0")
         (Erm.Predicate.Const (Erm.Etuple.Definite some_value)))
      merged.integrated
  in
  Alcotest.(check bool) "index = scan at scale" true
    (Erm.Relation.equal via_index via_scan)

let test_persist_reload () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "eridb_scenario_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let catalog =
        Store.Catalog.put (Store.Catalog.create dir) "census" merged.integrated
      in
      Store.Catalog.commit catalog;
      let reloaded = Store.Catalog.get (Store.Catalog.load dir) "census" in
      Alcotest.(check bool) "400-tuple relation survives disk" true
        (Erm.Relation.equal reloaded merged.integrated))

let () =
  Alcotest.run "scenario"
    [ ( "census",
        [ Alcotest.test_case "merge at scale" `Quick test_merge_scale;
          Alcotest.test_case "merge sharpens evidence" `Quick
            test_merge_sharpens;
          Alcotest.test_case "similarity bridges foreign keys" `Quick
            test_similarity_bridge;
          Alcotest.test_case "queries and optimizer" `Quick
            test_queries_consistent;
          Alcotest.test_case "incremental replay" `Quick
            test_incremental_replay;
          Alcotest.test_case "summaries" `Quick test_summaries_scale;
          Alcotest.test_case "index" `Quick test_index_at_scale;
          Alcotest.test_case "persist and reload" `Quick test_persist_reload
        ] ) ]
