(* Evidence-set concrete syntax (the paper's [si^0.5; ~^0.25] notation)
   and the vote-consolidation constructors of §1.2. *)

module V = Dst.Value
module Vs = Dst.Vset
module D = Dst.Domain
module M = Dst.Mass.F
module E = Dst.Evidence

let feq = Alcotest.float 1e-9
let ev = Alcotest.testable E.pp M.equal

let cuisines = D.of_strings "cuisines" [ "am"; "ca"; "hu"; "it"; "mu"; "si" ]

let test_parse_singletons () =
  let m = E.of_string cuisines "[si^0.5; hu^0.25; ca^0.25]" in
  Alcotest.check feq "si" 0.5 (M.mass m (Vs.of_strings [ "si" ]));
  Alcotest.check feq "hu" 0.25 (M.mass m (Vs.of_strings [ "hu" ]));
  Alcotest.(check int) "three focals" 3 (M.focal_count m)

let test_parse_sets_and_omega () =
  let m = E.of_string cuisines "[{hu, si}^1/3; ca^1/2; ~^1/6]" in
  Alcotest.check feq "{hu,si}" (1.0 /. 3.0)
    (M.mass m (Vs.of_strings [ "hu"; "si" ]));
  Alcotest.check feq "omega via ~" (1.0 /. 6.0)
    (M.mass m (D.values cuisines));
  Alcotest.check ev "matches the §2.1 evidence set" Paperdata.wok_m1
    (E.of_string (M.frame Paperdata.wok_m1) "[ca^1/2; {hu,si}^1/3; ~^1/6]")

let test_parse_fractions () =
  let m = E.of_string cuisines "[si^3/7; hu^4/7]" in
  Alcotest.check feq "3/7" (3.0 /. 7.0) (M.mass m (Vs.of_strings [ "si" ]))

let test_parse_whitespace_insensitive () =
  let a = E.of_string cuisines "[ si ^ 0.5 ; { hu , si } ^ 0.5 ]" in
  let b = E.of_string cuisines "[si^0.5;{hu,si}^0.5]" in
  Alcotest.check ev "whitespace irrelevant" a b

let test_parse_value_kinds () =
  let nums = D.of_values "nums" [ V.int 1; V.int 2; V.int 4; V.int 6 ] in
  let m = E.of_string nums "[{1,4}^0.6; {2,6}^0.4]" in
  Alcotest.check feq "int sets parse" 0.6
    (M.mass m (Vs.of_list [ V.int 1; V.int 4 ]));
  let quoted = D.of_values "q" [ V.string "two words"; V.string "x" ] in
  let mq = E.of_string quoted "[\"two words\"^1]" in
  Alcotest.check feq "quoted strings parse" 1.0
    (M.mass mq (Vs.singleton (V.string "two words")))

let parse_error input =
  Alcotest.(check bool)
    ("rejects " ^ input)
    true
    (match E.of_string cuisines input with
    | _ -> false
    | exception E.Parse_error _ -> true)

let test_parse_errors () =
  List.iter parse_error
    [ "si^1"; "[si^1"; "[si]"; "[si^]"; "[^1]"; "[si^1;]"; "[{}^1]";
      "[si^1] trailing"; "[si^one]"; "[si^1/0]"; "" ]

let test_semantic_errors () =
  let bad input =
    Alcotest.(check bool)
      ("invalid mass in " ^ input)
      true
      (match E.of_string cuisines input with
      | _ -> false
      | exception M.Invalid_mass _ -> true)
  in
  bad "[si^0.5; hu^0.6]";
  (* sums over 1 *)
  bad "[si^0.5]";
  (* sums under 1 *)
  bad "[sushi^1]" (* outside the domain *)

let test_roundtrip () =
  let cases =
    [ "[si^1]"; "[si^0.5; hu^0.5]"; "[{hu, si}^0.25; ca^0.5; ~^0.25]";
      "[am^0.125; {ca, hu, si}^0.875]" ]
  in
  List.iter
    (fun s ->
      let parsed = E.of_string cuisines s in
      Alcotest.check ev ("roundtrip " ^ s) parsed
        (E.of_string cuisines (E.to_string parsed)))
    cases

(* --- Vote consolidation (§1.2) ------------------------------------- *)

let dishes = D.of_strings "dishes" [ "d1"; "d2"; "d3" ]

let test_of_value_counts () =
  (* The paper's vote statistics: d1:3, d2:2, d3:1. *)
  let m =
    E.of_value_counts dishes
      [ (V.string "d1", 3); (V.string "d2", 2); (V.string "d3", 1) ]
  in
  Alcotest.check feq "d1 = 0.5" 0.5 (M.mass m (Vs.of_strings [ "d1" ]));
  Alcotest.check feq "d2 = 1/3" (1.0 /. 3.0)
    (M.mass m (Vs.of_strings [ "d2" ]));
  Alcotest.check feq "d3 = 1/6" (1.0 /. 6.0)
    (M.mass m (Vs.of_strings [ "d3" ]))

let test_of_counts_with_abstention () =
  (* Empty-set tallies are abstentions: they become Ω mass. *)
  let m =
    E.of_counts dishes
      [ (Vs.of_strings [ "d1" ], 2);
        (Vs.of_strings [ "d2"; "d3" ], 1);
        (Vs.empty, 1) ]
  in
  Alcotest.check feq "d1" 0.5 (M.mass m (Vs.of_strings [ "d1" ]));
  Alcotest.check feq "{d2,d3}" 0.25 (M.mass m (Vs.of_strings [ "d2"; "d3" ]));
  Alcotest.check feq "abstention -> omega" 0.25 (M.mass m (D.values dishes))

let test_of_counts_errors () =
  let invalid f =
    Alcotest.(check bool)
      "raises Invalid_mass" true
      (match f () with _ -> false | exception M.Invalid_mass _ -> true)
  in
  invalid (fun () -> E.of_counts dishes [ (Vs.of_strings [ "d1" ], -1) ]);
  invalid (fun () -> E.of_counts dishes [ (Vs.of_strings [ "d1" ], 0) ])

let test_definite () =
  let m = E.definite dishes (V.string "d2") in
  Alcotest.(check bool) "definite" true (M.is_definite m);
  Alcotest.check feq "mass 1" 1.0 (M.mass m (Vs.of_strings [ "d2" ]))

let () =
  Alcotest.run "evidence"
    [ ( "parse",
        [ Alcotest.test_case "singletons" `Quick test_parse_singletons;
          Alcotest.test_case "sets and omega" `Quick test_parse_sets_and_omega;
          Alcotest.test_case "fractions" `Quick test_parse_fractions;
          Alcotest.test_case "whitespace" `Quick
            test_parse_whitespace_insensitive;
          Alcotest.test_case "value kinds" `Quick test_parse_value_kinds;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
          Alcotest.test_case "semantic errors" `Quick test_semantic_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip ] );
      ( "votes",
        [ Alcotest.test_case "value counts" `Quick test_of_value_counts;
          Alcotest.test_case "abstentions" `Quick
            test_of_counts_with_abstention;
          Alcotest.test_case "count errors" `Quick test_of_counts_errors;
          Alcotest.test_case "definite" `Quick test_definite ] ) ]
