(* The extended relational model: attributes, schemas, tuples and
   relations — construction, validation, accessors, CWA_ER enforcement,
   and the tuple-level combine used by extended union. *)

module V = Dst.Value
module Vs = Dst.Vset
module D = Dst.Domain
module M = Dst.Mass.F
module S = Dst.Support

let value = Alcotest.testable V.pp V.equal

let colors = D.of_strings "color" [ "red"; "green"; "blue" ]

let schema =
  Erm.Schema.make ~name:"cars"
    ~key:[ Erm.Attr.definite "plate" "string" ]
    ~nonkey:
      [ Erm.Attr.definite "year" "int";
        Erm.Attr.evidential "color" colors ]

let ev s = Dst.Evidence.of_string colors s

let car ?(tm = S.certain) plate year color =
  Erm.Etuple.make schema
    ~key:[ V.string plate ]
    ~cells:[ Erm.Etuple.Definite (V.int year); Erm.Etuple.Evidence (ev color) ]
    ~tm

(* --- Attr ----------------------------------------------------------- *)

let test_attr () =
  let a = Erm.Attr.definite "year" "int" in
  Alcotest.(check bool) "not evidential" false (Erm.Attr.is_evidential a);
  Alcotest.(check bool) "value kind ok" true
    (Erm.Attr.value_kind_ok a (V.int 2020));
  Alcotest.(check bool) "value kind mismatch" false
    (Erm.Attr.value_kind_ok a (V.string "2020"));
  let e = Erm.Attr.evidential "color" colors in
  Alcotest.(check bool) "evidential" true (Erm.Attr.is_evidential e);
  Alcotest.(check bool) "equal requires same domain" false
    (Erm.Attr.equal e (Erm.Attr.evidential "color" D.boolean));
  Alcotest.(check string) "rename" "hue"
    (Erm.Attr.name (Erm.Attr.rename "hue" e));
  Alcotest.check_raises "unknown kind rejected"
    (Invalid_argument "Attr.definite: unknown value kind uuid") (fun () ->
      ignore (Erm.Attr.definite "x" "uuid"))

(* --- Schema --------------------------------------------------------- *)

let schema_error f =
  Alcotest.(check bool)
    "raises Schema_error" true
    (match f () with _ -> false | exception Erm.Schema.Schema_error _ -> true)

let test_schema_make () =
  Alcotest.(check int) "arity" 3 (Erm.Schema.arity schema);
  Alcotest.(check int) "key arity" 1 (Erm.Schema.key_arity schema);
  Alcotest.(check bool) "is_key" true (Erm.Schema.is_key schema "plate");
  Alcotest.(check bool) "non-key" false (Erm.Schema.is_key schema "year");
  Alcotest.(check int) "nonkey index" 1 (Erm.Schema.nonkey_index schema "color");
  Alcotest.(check bool) "mem" true (Erm.Schema.mem schema "color");
  Alcotest.(check bool) "not mem" false (Erm.Schema.mem schema "wheels");
  schema_error (fun () ->
      Erm.Schema.make ~name:"nokey" ~key:[]
        ~nonkey:[ Erm.Attr.definite "a" "int" ]);
  schema_error (fun () ->
      Erm.Schema.make ~name:"evkey"
        ~key:[ Erm.Attr.evidential "k" colors ]
        ~nonkey:[]);
  schema_error (fun () ->
      Erm.Schema.make ~name:"dup"
        ~key:[ Erm.Attr.definite "a" "string" ]
        ~nonkey:[ Erm.Attr.definite "a" "int" ])

let test_schema_union_compatible () =
  let same = Erm.Schema.rename_relation "other" schema in
  Alcotest.(check bool) "renamed relation still compatible" true
    (Erm.Schema.union_compatible schema same);
  Alcotest.(check bool) "equal needs same name too" false
    (Erm.Schema.equal schema same);
  let different =
    Erm.Schema.make ~name:"cars"
      ~key:[ Erm.Attr.definite "plate" "string" ]
      ~nonkey:[ Erm.Attr.definite "year" "int" ]
  in
  Alcotest.(check bool) "different attrs incompatible" false
    (Erm.Schema.union_compatible schema different)

let test_schema_project () =
  let p = Erm.Schema.project schema [ "plate"; "color" ] in
  Alcotest.(check int) "projected arity" 2 (Erm.Schema.arity p);
  Alcotest.(check bool) "key kept" true (Erm.Schema.is_key p "plate");
  schema_error (fun () -> Erm.Schema.project schema [ "year" ]);
  schema_error (fun () -> Erm.Schema.project schema [ "plate"; "wheels" ])

let test_schema_product_rename () =
  let other =
    Erm.Schema.make ~name:"owners"
      ~key:[ Erm.Attr.definite "oid" "int" ]
      ~nonkey:[ Erm.Attr.definite "name" "string" ]
  in
  let p = Erm.Schema.product schema other in
  Alcotest.(check int) "product arity" 5 (Erm.Schema.arity p);
  Alcotest.(check int) "product key arity" 2 (Erm.Schema.key_arity p);
  schema_error (fun () -> Erm.Schema.product schema schema);
  let renamed = Erm.Schema.rename_attrs (fun n -> "r_" ^ n) schema in
  Alcotest.(check bool) "renamed product works" true
    (Erm.Schema.arity (Erm.Schema.product schema renamed) = 6);
  schema_error (fun () -> Erm.Schema.rename_attrs (fun _ -> "same") schema)

(* --- Etuple --------------------------------------------------------- *)

let tuple_error f =
  Alcotest.(check bool)
    "raises Tuple_error" true
    (match f () with _ -> false | exception Erm.Etuple.Tuple_error _ -> true)

let test_etuple_make_validation () =
  tuple_error (fun () ->
      Erm.Etuple.make schema ~key:[] ~cells:[] ~tm:S.certain);
  tuple_error (fun () ->
      (* wrong key kind *)
      Erm.Etuple.make schema ~key:[ V.int 3 ]
        ~cells:
          [ Erm.Etuple.Definite (V.int 2020); Erm.Etuple.Evidence (ev "[red^1]") ]
        ~tm:S.certain);
  tuple_error (fun () ->
      (* definite cell of the wrong kind *)
      Erm.Etuple.make schema ~key:[ V.string "abc" ]
        ~cells:
          [ Erm.Etuple.Definite (V.string "2020");
            Erm.Etuple.Evidence (ev "[red^1]") ]
        ~tm:S.certain);
  tuple_error (fun () ->
      (* evidence in a definite attribute *)
      Erm.Etuple.make schema ~key:[ V.string "abc" ]
        ~cells:
          [ Erm.Etuple.Evidence (ev "[red^1]");
            Erm.Etuple.Evidence (ev "[red^1]") ]
        ~tm:S.certain);
  tuple_error (fun () ->
      (* definite value in an evidential attribute *)
      Erm.Etuple.make schema ~key:[ V.string "abc" ]
        ~cells:
          [ Erm.Etuple.Definite (V.int 2020);
            Erm.Etuple.Definite (V.string "red") ]
        ~tm:S.certain);
  tuple_error (fun () ->
      (* evidence over the wrong frame *)
      Erm.Etuple.make schema ~key:[ V.string "abc" ]
        ~cells:
          [ Erm.Etuple.Definite (V.int 2020);
            Erm.Etuple.Evidence (M.vacuous D.boolean) ]
        ~tm:S.certain)

let test_etuple_accessors () =
  let t = car "abc-123" 2019 "[red^0.5; {red,green}^0.5]" in
  Alcotest.check value "key" (V.string "abc-123")
    (List.nth (Erm.Etuple.key t) 0);
  Alcotest.check value "definite via cell" (V.int 2019)
    (Erm.Etuple.definite_value schema t "year");
  Alcotest.check value "key attr via definite_value" (V.string "abc-123")
    (Erm.Etuple.definite_value schema t "plate");
  Alcotest.(check bool) "evidence accessor" true
    (M.equal
       (Erm.Etuple.evidence schema t "color")
       (ev "[red^0.5; {red,green}^0.5]"));
  tuple_error (fun () -> Erm.Etuple.evidence schema t "year");
  tuple_error (fun () -> Erm.Etuple.definite_value schema t "color");
  Alcotest.check_raises "unknown attribute" Not_found (fun () ->
      ignore (Erm.Etuple.cell schema t "wheels"))

let test_etuple_of_assoc () =
  let t =
    Erm.Etuple.of_assoc schema
      ~key:[ V.string "xyz" ]
      ~cells:
        [ ("color", Erm.Etuple.Evidence (ev "[green^1]"));
          ("year", Erm.Etuple.Definite (V.int 2021)) ]
      ~tm:S.certain
  in
  Alcotest.check value "order-independent" (V.int 2021)
    (Erm.Etuple.definite_value schema t "year");
  tuple_error (fun () ->
      Erm.Etuple.of_assoc schema ~key:[ V.string "x" ]
        ~cells:[ ("year", Erm.Etuple.Definite (V.int 1)) ]
        ~tm:S.certain);
  tuple_error (fun () ->
      Erm.Etuple.of_assoc schema ~key:[ V.string "x" ]
        ~cells:
          [ ("year", Erm.Etuple.Definite (V.int 1));
            ("color", Erm.Etuple.Evidence (ev "[red^1]"));
            ("plate", Erm.Etuple.Definite (V.string "x")) ]
        ~tm:S.certain)

let test_etuple_combine () =
  let a = car ~tm:(S.make ~sn:0.5 ~sp:0.5) "abc" 2019 "[red^0.9; ~^0.1]" in
  let b = car ~tm:(S.make ~sn:0.8 ~sp:1.0) "abc" 2019 "[red^0.5; green^0.5]" in
  let c = Erm.Etuple.combine schema a b in
  (* red: .45 + .05; green: .05 -> kappa = .45, norm .55 *)
  let color = Erm.Etuple.evidence schema c "color" in
  Alcotest.(check (float 1e-9)) "red" (0.5 /. 0.55)
    (M.mass color (Vs.of_strings [ "red" ]));
  Alcotest.(check (float 1e-9)) "membership Dempster" (5.0 /. 6.0)
    (S.sn (Erm.Etuple.tm c));
  (* Key mismatch and definite disagreement are structural errors. *)
  tuple_error (fun () -> Erm.Etuple.combine schema a (car "zzz" 2019 "[red^1]"));
  tuple_error (fun () -> Erm.Etuple.combine schema a (car "abc" 2020 "[red^1]"));
  Alcotest.check_raises "total evidence conflict" M.Total_conflict (fun () ->
      ignore
        (Erm.Etuple.combine schema
           (car "k" 1 "[red^1]")
           (car "k" 1 "[green^1]")))

let test_etuple_concat () =
  let other_schema =
    Erm.Schema.make ~name:"owners"
      ~key:[ Erm.Attr.definite "oid" "int" ]
      ~nonkey:[ Erm.Attr.definite "name" "string" ]
  in
  let owner =
    Erm.Etuple.make other_schema ~key:[ V.int 7 ]
      ~cells:[ Erm.Etuple.Definite (V.string "ada") ]
      ~tm:(S.make ~sn:0.5 ~sp:1.0)
  in
  let t = car ~tm:(S.make ~sn:0.8 ~sp:0.9) "abc" 2019 "[red^1]" in
  let c = Erm.Etuple.concat t owner in
  Alcotest.(check int) "concatenated key" 2 (List.length (Erm.Etuple.key c));
  Alcotest.(check int) "concatenated cells" 3
    (List.length (Erm.Etuple.cells c));
  Alcotest.(check (float 1e-9)) "F_TM membership" 0.4 (S.sn (Erm.Etuple.tm c))

(* --- Relation ------------------------------------------------------- *)

let test_relation_cwa () =
  let r = Erm.Relation.empty schema in
  let dead = car ~tm:S.impossible "dead" 2000 "[red^1]" in
  Alcotest.(check bool)
    "sn = 0 rejected" true
    (match Erm.Relation.add r dead with
    | _ -> false
    | exception Erm.Relation.Relation_error _ -> true);
  let unknown_t = car ~tm:S.unknown "unk" 2000 "[red^1]" in
  Alcotest.(check bool)
    "(0,1) also rejected" true
    (match Erm.Relation.add r unknown_t with
    | _ -> false
    | exception Erm.Relation.Relation_error _ -> true);
  let r = Erm.Relation.add_unchecked r dead in
  Alcotest.(check bool) "unchecked bypass for tests" false
    (Erm.Relation.satisfies_cwa r)

let test_relation_keys () =
  let t1 = car "aaa" 2018 "[red^1]" in
  let t2 = car "bbb" 2019 "[green^1]" in
  let r = Erm.Relation.of_tuples schema [ t1; t2 ] in
  Alcotest.(check int) "cardinal" 2 (Erm.Relation.cardinal r);
  Alcotest.(check bool) "mem" true (Erm.Relation.mem r [ V.string "aaa" ]);
  Alcotest.(check bool) "find returns the tuple" true
    (Erm.Etuple.equal t1 (Erm.Relation.find r [ V.string "aaa" ]));
  Alcotest.check_raises "find missing" Not_found (fun () ->
      ignore (Erm.Relation.find r [ V.string "zzz" ]));
  Alcotest.(check bool)
    "duplicate key rejected" true
    (match Erm.Relation.add r (car "aaa" 1999 "[blue^1]") with
    | _ -> false
    | exception Erm.Relation.Duplicate_key _ -> true);
  let r2 = Erm.Relation.replace r (car "aaa" 1999 "[blue^1]") in
  Alcotest.check value "replace overwrites" (V.int 1999)
    (Erm.Etuple.definite_value schema
       (Erm.Relation.find r2 [ V.string "aaa" ])
       "year");
  let r3 = Erm.Relation.remove r [ V.string "aaa" ] in
  Alcotest.(check int) "remove" 1 (Erm.Relation.cardinal r3)

let test_relation_iteration_order () =
  let r =
    Erm.Relation.of_tuples schema
      [ car "zz" 1 "[red^1]"; car "aa" 2 "[red^1]"; car "mm" 3 "[red^1]" ]
  in
  let keys =
    List.map (fun t -> List.nth (Erm.Etuple.key t) 0) (Erm.Relation.tuples r)
  in
  Alcotest.(check (list string))
    "tuples in key order"
    [ "aa"; "mm"; "zz" ]
    (List.map V.to_string keys)

let test_relation_map_tuples_closure () =
  let r =
    Erm.Relation.of_tuples schema
      [ car ~tm:(S.make ~sn:0.5 ~sp:1.0) "aa" 1 "[red^1]";
        car "bb" 2 "[green^1]" ]
  in
  (* Zeroing the membership drops the tuple rather than storing it. *)
  let zeroed =
    Erm.Relation.map_tuples
      (fun t ->
        Some
          (Erm.Etuple.with_tm
             (S.f_tm (Erm.Etuple.tm t) S.impossible)
             t))
      schema r
  in
  Alcotest.(check int) "all dropped" 0 (Erm.Relation.cardinal zeroed);
  Alcotest.(check bool) "result still satisfies CWA" true
    (Erm.Relation.satisfies_cwa zeroed)

let test_relation_equal () =
  let r1 = Erm.Relation.of_tuples schema [ car "aa" 1 "[red^1]" ] in
  let r2 = Erm.Relation.of_tuples schema [ car "aa" 1 "[red^1]" ] in
  let r3 = Erm.Relation.of_tuples schema [ car "aa" 1 "[green^1]" ] in
  Alcotest.(check bool) "equal" true (Erm.Relation.equal r1 r2);
  Alcotest.(check bool) "cells differ" false (Erm.Relation.equal r1 r3)

let () =
  Alcotest.run "erm"
    [ ("attr", [ Alcotest.test_case "basics" `Quick test_attr ]);
      ( "schema",
        [ Alcotest.test_case "make and lookup" `Quick test_schema_make;
          Alcotest.test_case "union compatibility" `Quick
            test_schema_union_compatible;
          Alcotest.test_case "projection" `Quick test_schema_project;
          Alcotest.test_case "product and rename" `Quick
            test_schema_product_rename ] );
      ( "etuple",
        [ Alcotest.test_case "validation" `Quick test_etuple_make_validation;
          Alcotest.test_case "accessors" `Quick test_etuple_accessors;
          Alcotest.test_case "of_assoc" `Quick test_etuple_of_assoc;
          Alcotest.test_case "combine" `Quick test_etuple_combine;
          Alcotest.test_case "concat" `Quick test_etuple_concat ] );
      ( "relation",
        [ Alcotest.test_case "CWA enforcement" `Quick test_relation_cwa;
          Alcotest.test_case "key operations" `Quick test_relation_keys;
          Alcotest.test_case "iteration order" `Quick
            test_relation_iteration_order;
          Alcotest.test_case "map_tuples drops sn=0" `Quick
            test_relation_map_tuples_closure;
          Alcotest.test_case "equality" `Quick test_relation_equal ] ) ]
