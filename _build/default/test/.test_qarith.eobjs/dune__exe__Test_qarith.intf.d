test/test_qarith.mli:
