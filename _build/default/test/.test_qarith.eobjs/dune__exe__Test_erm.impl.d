test/test_erm.ml: Alcotest Dst Erm List
