test/test_federated.ml: Alcotest Dst Erm Float Format Integration List Paperdata String Workload
