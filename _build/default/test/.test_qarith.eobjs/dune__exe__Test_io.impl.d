test/test_io.ml: Alcotest Dst Erm Filename Fun List Paperdata String Sys
