test/test_qarith.ml: Alcotest Float QCheck QCheck_alcotest Qarith
