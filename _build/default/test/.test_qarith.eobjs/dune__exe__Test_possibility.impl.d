test/test_possibility.ml: Alcotest Dst Float List QCheck QCheck_alcotest Workload
