test/test_integration.ml: Alcotest Dst Erm Integration List Paperdata Workload
