test/test_combine.mli:
