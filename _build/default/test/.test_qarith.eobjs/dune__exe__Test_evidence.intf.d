test/test_evidence.mli:
