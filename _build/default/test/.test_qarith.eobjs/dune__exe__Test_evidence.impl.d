test/test_evidence.ml: Alcotest Dst List Paperdata
