test/test_paper.ml: Alcotest Dst Erm Format Paperdata Qarith Query
