test/test_ops.ml: Alcotest Dst Erm List String
