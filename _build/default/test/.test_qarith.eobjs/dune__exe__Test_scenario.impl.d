test/test_scenario.ml: Alcotest Array Dst Erm Filename Fun Integration List Printf Query Store Sys Unix Workload
