test/test_storage.ml: Alcotest Array Dst Erm Filename Fun List Paperdata Printf QCheck Query Random Store String Sys Unix Workload
