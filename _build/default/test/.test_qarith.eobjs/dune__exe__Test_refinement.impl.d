test/test_refinement.ml: Alcotest Dst Format List
