test/test_extensions.ml: Alcotest Dst Erm Integration List Paperdata Printf Query String
