test/test_erm.mli:
