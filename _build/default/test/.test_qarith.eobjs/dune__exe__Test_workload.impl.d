test/test_workload.ml: Alcotest Array Dst Erm Float List Workload
