test/test_baselines.ml: Alcotest Baselines Dst Erm Format List Paperdata
