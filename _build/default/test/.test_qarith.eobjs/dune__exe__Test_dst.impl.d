test/test_dst.ml: Alcotest Dst Float Format List Paperdata
