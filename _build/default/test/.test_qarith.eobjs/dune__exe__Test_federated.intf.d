test/test_federated.mli:
