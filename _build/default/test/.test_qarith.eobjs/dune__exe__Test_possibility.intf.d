test/test_possibility.mli:
