test/test_combine.ml: Alcotest Dst List Paperdata Qarith
