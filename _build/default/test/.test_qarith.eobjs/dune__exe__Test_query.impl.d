test/test_query.ml: Alcotest Array Dst Erm Format List Paperdata Printf QCheck QCheck_alcotest Query String Workload
