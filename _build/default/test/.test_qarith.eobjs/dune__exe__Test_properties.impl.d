test/test_properties.ml: Alcotest Baselines Dst Erm Float Integration List Printf QCheck QCheck_alcotest Qarith Query String Workload
