test/test_dst.mli:
