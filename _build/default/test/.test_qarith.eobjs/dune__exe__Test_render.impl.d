test/test_render.ml: Alcotest Dst Erm Format List String
