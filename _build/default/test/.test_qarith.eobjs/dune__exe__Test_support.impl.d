test/test_support.ml: Alcotest Dst Format List Printf
