(* Workload generation: PRNG determinism and bounds, and the structural
   invariants of the generated evidence, schemas and source pairs that
   the benchmarks rely on. *)

module R = Workload.Rng
module G = Workload.Gen
module M = Dst.Mass.F

let test_rng_deterministic () =
  let a = R.create 7 and b = R.create 7 in
  let draws rng = List.init 20 (fun _ -> R.int rng 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (draws a) (draws b);
  let c = R.create 8 in
  Alcotest.(check bool) "different seed differs" true (draws (R.create 7) <> draws c)

let test_rng_bounds () =
  let rng = R.create 1 in
  for _ = 1 to 1000 do
    let n = R.int rng 17 in
    if n < 0 || n >= 17 then Alcotest.failf "int out of bounds: %d" n;
    let f = R.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %g" f
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (R.int rng 0))

let test_rng_split_independent () =
  let rng = R.create 42 in
  let child = R.split rng in
  (* Drawing from the child must not change the parent's stream relative
     to a parent that split without using the child. *)
  let rng2 = R.create 42 in
  let _child2 = R.split rng2 in
  ignore (R.int child 100);
  Alcotest.(check int) "parent unaffected by child draws" (R.int rng2 1000)
    (R.int rng 1000)

let test_rng_pick_sample_shuffle () =
  let rng = R.create 3 in
  let l = [ 1; 2; 3; 4; 5; 6 ] in
  for _ = 1 to 100 do
    let p = R.pick rng l in
    if not (List.mem p l) then Alcotest.fail "pick outside list";
    let s = R.sample rng 3 l in
    Alcotest.(check int) "sample size" 3 (List.length s);
    Alcotest.(check int) "sample distinct" 3
      (List.length (List.sort_uniq compare s));
    List.iter (fun x -> if not (List.mem x l) then Alcotest.fail "foreign") s
  done;
  let shuffled = R.shuffle rng l in
  Alcotest.(check (list int)) "shuffle is a permutation" l
    (List.sort compare shuffled);
  Alcotest.check_raises "sample too large"
    (Invalid_argument "Rng.sample: k exceeds list length") (fun () ->
      ignore (R.sample rng 10 l))

let test_rng_zipf () =
  let rng = R.create 5 in
  let counts = Array.make 11 0 in
  for _ = 1 to 5000 do
    let k = R.zipf rng ~s:1.2 ~n:10 in
    if k < 1 || k > 10 then Alcotest.failf "zipf out of range: %d" k;
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 1 dominates rank 10" true
    (counts.(1) > counts.(10) * 3)

let test_gen_domain () =
  let d = G.domain ~size:5 "d" in
  Alcotest.(check int) "size" 5 (Dst.Domain.size d)

let test_gen_evidence_valid () =
  let rng = R.create 11 in
  let d = G.domain ~size:8 "d" in
  for _ = 1 to 200 do
    let e = G.evidence rng ~focals:4 ~max_focal_size:3 d in
    let total =
      List.fold_left (fun acc (_, x) -> acc +. x) 0.0 (M.focals e)
    in
    if Float.abs (total -. 1.0) > 1e-9 then Alcotest.fail "mass not 1";
    List.iter
      (fun (set, x) ->
        if Dst.Vset.is_empty set then Alcotest.fail "empty focal";
        if x <= 0.0 then Alcotest.fail "non-positive mass")
      (M.focals e)
  done

let test_gen_evidence_omega_floor () =
  let rng = R.create 13 in
  let d = G.domain ~size:8 "d" in
  (* The default floor guarantees κ < 1 for any generated pair. *)
  for _ = 1 to 100 do
    let a = G.evidence rng d and b = G.evidence rng d in
    if M.conflict a b >= 1.0 -. 1e-9 then Alcotest.fail "total conflict"
  done

let test_gen_conflicting_pair () =
  let rng = R.create 17 in
  let d = G.domain ~size:8 "d" in
  let _, m2 = G.conflicting_pair rng ~conflict:0.6 d in
  ignore m2;
  let m1, m2 = G.conflicting_pair rng ~conflict:0.0 d in
  Alcotest.(check (float 1e-9)) "zero conflict" 0.0 (M.conflict m1 m2);
  let m1, m2 = G.conflicting_pair rng ~conflict:1.0 d in
  Alcotest.(check (float 1e-9)) "total conflict" 1.0 (M.conflict m1 m2)

let test_gen_support_positive () =
  let rng = R.create 19 in
  for _ = 1 to 500 do
    let s = G.support rng in
    if not (Dst.Support.positive s) then Alcotest.fail "sn = 0 generated";
    if Dst.Support.sn s > Dst.Support.sp s +. 1e-12 then
      Alcotest.fail "sn > sp"
  done

let test_gen_schema_and_relation () =
  let rng = R.create 23 in
  let schema = G.schema ~definite:2 ~evidential:3 ~domain_size:6 "t" in
  Alcotest.(check int) "arity = 1 key + 2 + 3" 6 (Erm.Schema.arity schema);
  let r = G.relation rng ~size:50 schema in
  Alcotest.(check int) "relation size" 50 (Erm.Relation.cardinal r);
  Alcotest.(check bool) "CWA holds" true (Erm.Relation.satisfies_cwa r)

let test_gen_evidence_zipf () =
  let rng = R.create 37 in
  let d = G.domain ~size:12 "d" in
  let mean_conflict zipf_skew =
    let rng = R.create 41 in
    let total = ref 0.0 in
    for _ = 1 to 200 do
      let a = G.evidence rng ~focals:4 ~max_focal_size:3 ~zipf_skew d in
      let b = G.evidence rng ~focals:4 ~max_focal_size:3 ~zipf_skew d in
      total := !total +. M.conflict a b
    done;
    !total /. 200.0
  in
  (* Well-formed under skew. *)
  for _ = 1 to 100 do
    let e = G.evidence rng ~focals:4 ~zipf_skew:1.5 d in
    let total = List.fold_left (fun acc (_, x) -> acc +. x) 0.0 (M.focals e) in
    if Float.abs (total -. 1.0) > 1e-9 then Alcotest.fail "mass not 1"
  done;
  (* Skewed sources agree more: popular values co-occur. *)
  Alcotest.(check bool) "skew lowers mean conflict" true
    (mean_conflict 1.5 < mean_conflict 0.0)

let test_gen_source_pair () =
  let rng = R.create 29 in
  let schema = G.schema "pair" in
  let a, b = G.source_pair rng ~size:100 ~overlap:0.3 schema in
  Alcotest.(check int) "a size" 100 (Erm.Relation.cardinal a);
  Alcotest.(check int) "b size" 100 (Erm.Relation.cardinal b);
  Alcotest.(check int) "shared keys" 30
    (List.length (Erm.Ops.intersect_keys a b));
  (* The pair must union cleanly: definite cells agree, evidence never
     totally conflicts. *)
  let u = Erm.Ops.union a b in
  Alcotest.(check int) "union covers both" 170 (Erm.Relation.cardinal u)

let () =
  Alcotest.run "workload"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "pick/sample/shuffle" `Quick
            test_rng_pick_sample_shuffle;
          Alcotest.test_case "zipf" `Quick test_rng_zipf ] );
      ( "gen",
        [ Alcotest.test_case "domain" `Quick test_gen_domain;
          Alcotest.test_case "evidence validity" `Quick
            test_gen_evidence_valid;
          Alcotest.test_case "omega floor" `Quick
            test_gen_evidence_omega_floor;
          Alcotest.test_case "conflicting pairs" `Quick
            test_gen_conflicting_pair;
          Alcotest.test_case "support positivity" `Quick
            test_gen_support_positive;
          Alcotest.test_case "zipf-skewed evidence" `Quick
            test_gen_evidence_zipf;
          Alcotest.test_case "schema and relation" `Quick
            test_gen_schema_and_relation;
          Alcotest.test_case "source pair" `Quick test_gen_source_pair ] ) ]
