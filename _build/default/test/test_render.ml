(* Rendering and threshold edges: ASCII table shape, digit control,
   threshold tolerance semantics, and miscellaneous printer gaps not
   covered by the golden CLI sessions. *)

module V = Dst.Value
module S = Dst.Support
module T = Erm.Threshold

let colors = Dst.Domain.of_strings "color" [ "red"; "green"; "blue" ]

let schema =
  Erm.Schema.make ~name:"tiny"
    ~key:[ Erm.Attr.definite "id" "string" ]
    ~nonkey:[ Erm.Attr.evidential "color" colors ]

let tup ?(tm = S.certain) k ev =
  Erm.Etuple.make schema
    ~key:[ V.string k ]
    ~cells:[ Erm.Etuple.Evidence (Dst.Evidence.of_string colors ev) ]
    ~tm

let tiny =
  Erm.Relation.of_tuples schema
    [ tup "a" "[red^1]"; tup "bbbbbbbb" "[green^0.5; ~^0.5]" ]

let lines s = String.split_on_char '\n' (String.trim s)

let contains text sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length text && (String.sub text i n = sub || go (i + 1))
  in
  go 0

(* --- ASCII tables ---------------------------------------------------- *)

let test_table_shape () =
  let text = Erm.Render.to_string ~title:"T" tiny in
  let ls = lines text in
  (* title, rule, header, rule, 2 rows, rule *)
  Alcotest.(check int) "seven lines" 7 (List.length ls);
  Alcotest.(check string) "title line" "T:" (List.hd ls);
  (* All bordered lines have equal width. *)
  let widths =
    List.filter_map
      (fun l ->
        if String.length l > 0 && (l.[0] = '+' || l.[0] = '|') then
          Some (String.length l)
        else None)
      ls
  in
  Alcotest.(check int) "uniform width" 1
    (List.length (List.sort_uniq compare widths))

let test_table_default_title () =
  Alcotest.(check bool) "falls back to the schema name" true
    (contains (Erm.Render.to_string tiny) "tiny:")

let test_empty_relation_renders () =
  let text = Erm.Render.to_string (Erm.Relation.empty schema) in
  Alcotest.(check bool) "header still present" true (contains text "color");
  let csv = Erm.Render.to_csv (Erm.Relation.empty schema) in
  Alcotest.(check int) "csv has just the header" 1
    (List.length (lines csv))

let test_digit_control () =
  let third = Erm.Relation.of_tuples schema [ tup "x" "[red^1/3; ~^2/3]" ] in
  let rounded = Erm.Render.to_csv third in
  Alcotest.(check bool) "default 3 digits" true (contains rounded "0.333");
  Alcotest.(check bool) "not more than 3" false (contains rounded "0.33333");
  let precise = Erm.Render.to_csv ~digits:12 third in
  Alcotest.(check bool) "12 digits on request" true
    (contains precise "0.333333333333")

let test_evidence_support_strings () =
  Alcotest.(check string) "support rendering" "(0.5, 0.75)"
    (Erm.Render.support_to_string (S.make ~sn:0.5 ~sp:0.75));
  (* Focal elements print in Vset order: Omega (the 3-value set) sorts
     before the singleton here. *)
  Alcotest.(check string) "evidence rendering"
    "[~^0.5; green^0.5]"
    (Erm.Render.evidence_to_string
       (Dst.Evidence.of_string colors "[green^0.5; ~^0.5]"));
  Alcotest.(check string) "definite cell renders bare" "42"
    (Erm.Render.cell_to_string (Erm.Etuple.Definite (V.int 42)))

(* --- Threshold semantics --------------------------------------------- *)

let s05 = S.make ~sn:0.5 ~sp:0.8

let test_threshold_ops () =
  Alcotest.(check bool) "always" true (T.satisfies T.always s05);
  Alcotest.(check bool) "gt strict" false (T.satisfies (T.sn_gt 0.5) s05);
  Alcotest.(check bool) "ge inclusive" true (T.satisfies (T.sn_ge 0.5) s05);
  Alcotest.(check bool) "sp bound" true (T.satisfies (T.sp_ge 0.8) s05);
  Alcotest.(check bool) "conjunction" true
    (T.satisfies T.(sn_ge 0.5 &&& sp_ge 0.8) s05);
  Alcotest.(check bool) "conjunction fails on one side" false
    (T.satisfies T.(sn_ge 0.5 &&& sp_ge 0.9) s05);
  Alcotest.(check bool) "lt" true (T.satisfies (T.Cmp (T.Sn, T.Lt, 0.6)) s05);
  Alcotest.(check bool) "eq" true (T.satisfies (T.Cmp (T.Sp, T.Eq, 0.8)) s05)

let test_threshold_tolerance () =
  (* Float products like 0.1 * 3 = 0.30000000000000004 must satisfy
     sn >= 0.3: the comparisons are tolerance-aware. *)
  let wobbly = S.make ~sn:(0.1 *. 3.0) ~sp:1.0 in
  Alcotest.(check bool) "ge absorbs float drift" true
    (T.satisfies (T.sn_ge 0.3) wobbly);
  Alcotest.(check bool) "eq absorbs float drift" true
    (T.satisfies (T.Cmp (T.Sn, T.Eq, 0.3)) wobbly);
  let almost_one = S.make ~sn:(0.99999999999 +. 1e-11) ~sp:1.0 in
  Alcotest.(check bool) "certain_only accepts computed 1.0" true
    (T.satisfies T.certain_only almost_one)

let test_threshold_pp () =
  Alcotest.(check string) "atom" "sn > 0.5"
    (Format.asprintf "%a" T.pp (T.sn_gt 0.5));
  Alcotest.(check string) "conjunction" "sn > 0.1 and sp >= 0.3"
    (Format.asprintf "%a" T.pp T.(sn_gt 0.1 &&& sp_ge 0.3));
  Alcotest.(check string) "always" "always" (Format.asprintf "%a" T.pp T.always)

(* --- misc printers ---------------------------------------------------- *)

let test_predicate_pp () =
  let open Erm.Predicate in
  Alcotest.(check string) "is" "color is {red}"
    (Format.asprintf "%a" pp (is_values "color" [ "red" ]));
  Alcotest.(check string) "theta" "color = red"
    (Format.asprintf "%a" pp
       (theta Eq (Field "color") (Const (Erm.Etuple.Definite (V.string "red")))));
  Alcotest.(check string) "compound"
    "(color is {red} and (not color is {green}))"
    (Format.asprintf "%a" pp
       (is_values "color" [ "red" ] &&& not_ (is_values "color" [ "green" ])));
  Alcotest.(check (list string)) "attrs_used deduplicates" [ "color" ]
    (attrs_used (is_values "color" [ "red" ] &&& is_values "color" [ "blue" ]))

let test_markdown_empty () =
  Alcotest.(check string) "empty relation renders header-only table"
    "| id | color | (sn,sp) |\n| --- | --- | --- |\n"
    (Erm.Render.to_markdown (Erm.Relation.empty schema))

let () =
  Alcotest.run "render"
    [ ( "tables",
        [ Alcotest.test_case "shape" `Quick test_table_shape;
          Alcotest.test_case "default title" `Quick test_table_default_title;
          Alcotest.test_case "empty relation" `Quick
            test_empty_relation_renders;
          Alcotest.test_case "digit control" `Quick test_digit_control;
          Alcotest.test_case "cell strings" `Quick
            test_evidence_support_strings;
          Alcotest.test_case "markdown empty" `Quick test_markdown_empty ] );
      ( "threshold",
        [ Alcotest.test_case "operators" `Quick test_threshold_ops;
          Alcotest.test_case "tolerance" `Quick test_threshold_tolerance;
          Alcotest.test_case "printing" `Quick test_threshold_pp ] );
      ( "printers",
        [ Alcotest.test_case "predicates" `Quick test_predicate_pp ] ) ]
