(* Related-work baselines (§1.3): DeMichiel partial values, Tseng
   probabilistic partial values, Dayal aggregates — their own semantics
   plus the projections from the evidential model and the refinement
   relationships the paper claims. *)

module V = Dst.Value
module Vs = Dst.Vset
module D = Dst.Domain
module M = Dst.Mass.F
module S = Dst.Support
module Pv = Baselines.Partial_value
module Ppv = Baselines.Prob_partial
module Ag = Baselines.Aggregate

let feq = Alcotest.float 1e-9
let vset = Alcotest.testable Vs.pp Vs.equal

let colors = D.of_strings "color" [ "red"; "green"; "blue" ]
let ev s = Dst.Evidence.of_string colors s

(* --- Partial values -------------------------------------------------- *)

let test_pv_of_evidence () =
  Alcotest.check vset "union of focals"
    (Vs.of_strings [ "green"; "red" ])
    (Pv.of_evidence (ev "[red^0.6; {red,green}^0.4]"));
  Alcotest.(check bool) "definite detection" true
    (Pv.is_definite (Pv.of_evidence (ev "[red^1]")))

let test_pv_combine () =
  Alcotest.check vset "intersection"
    (Vs.of_strings [ "red" ])
    (Pv.combine (Vs.of_strings [ "red"; "green" ]) (Vs.of_strings [ "red"; "blue" ]));
  Alcotest.(check bool)
    "empty intersection is inconsistent" true
    (match Pv.combine (Vs.of_strings [ "red" ]) (Vs.of_strings [ "blue" ]) with
    | _ -> false
    | exception Pv.Inconsistent _ -> true)

let test_pv_satisfies () =
  let pv = Vs.of_strings [ "red"; "green" ] in
  Alcotest.(check bool) "subset is True" true
    (Pv.satisfies_is pv (Vs.of_strings [ "red"; "green"; "blue" ]) = Pv.True);
  Alcotest.(check bool) "overlap is Maybe" true
    (Pv.satisfies_is pv (Vs.of_strings [ "red" ]) = Pv.Maybe);
  Alcotest.(check bool) "disjoint is False" true
    (Pv.satisfies_is pv (Vs.of_strings [ "blue" ]) = Pv.False)

let test_pv_refines_support () =
  (* The DS answer coarsens to DeMichiel's three buckets consistently:
     Bel=1 -> True, Pls=0 -> False, otherwise Maybe. *)
  let cases =
    [ (S.certain, Pv.True); (S.impossible, Pv.False);
      (S.make ~sn:0.3 ~sp:0.9, Pv.Maybe); (S.make ~sn:0.0 ~sp:0.4, Pv.Maybe) ]
  in
  List.iter
    (fun (s, expected) ->
      Alcotest.(check bool)
        (Format.asprintf "%a coarsens correctly" S.pp s)
        true
        (Pv.answer_of_support s = expected))
    cases

let schema =
  Erm.Schema.make ~name:"r"
    ~key:[ Erm.Attr.definite "k" "string" ]
    ~nonkey:[ Erm.Attr.evidential "color" colors ]

let etuple ?(tm = S.certain) k color =
  Erm.Etuple.make schema ~key:[ V.string k ]
    ~cells:[ Erm.Etuple.Evidence (ev color) ]
    ~tm

let extended =
  Erm.Relation.of_tuples schema
    [ etuple "a" "[red^0.6; {red,green}^0.4]"; etuple "b" "[blue^1]" ]

let test_pv_relation_roundtrip () =
  let rel = Pv.relation_of_extended extended in
  Alcotest.(check int) "two tuples" 2 (List.length rel);
  let a = List.find (fun (t : Pv.tuple) -> V.equal t.key (V.string "a")) rel in
  Alcotest.check vset "a's partial value"
    (Vs.of_strings [ "green"; "red" ])
    (List.assoc "color" a.cells)

let test_pv_union_and_select () =
  let mk k pv = { Pv.key = V.string k; cells = [ ("color", pv) ] } in
  let left = [ mk "a" (Vs.of_strings [ "red"; "green" ]); mk "b" (Vs.of_strings [ "blue" ]) ] in
  let right = [ mk "a" (Vs.of_strings [ "red" ]); mk "c" (Vs.of_strings [ "green" ]) ] in
  let merged, bad = Pv.union left right in
  Alcotest.(check int) "three tuples" 3 (List.length merged);
  Alcotest.(check int) "no inconsistencies" 0 (List.length bad);
  let conflicting = [ mk "b" (Vs.of_strings [ "red" ]) ] in
  let merged2, bad2 = Pv.union left conflicting in
  Alcotest.(check int) "b dropped on inconsistency" 1 (List.length merged2);
  Alcotest.(check int) "reported" 1 (List.length bad2);
  let true_t, maybe_t =
    Pv.select_is merged "color" (Vs.of_strings [ "red" ])
  in
  (* a merged to {red} -> True; b {blue} -> False; c {green} -> False. *)
  Alcotest.(check int) "true set" 1 (List.length true_t);
  Alcotest.(check int) "maybe set" 0 (List.length maybe_t)

(* --- Probabilistic partial values ------------------------------------ *)

let test_ppv_make () =
  let p = Ppv.make [ (V.string "red", 2.0); (V.string "green", 2.0) ] in
  Alcotest.check feq "normalizes" 0.5 (Ppv.prob_in p (Vs.of_strings [ "red" ]));
  let dup = Ppv.make [ (V.string "red", 1.0); (V.string "red", 1.0) ] in
  Alcotest.check feq "duplicates merge" 1.0
    (Ppv.prob_in dup (Vs.of_strings [ "red" ]));
  Alcotest.(check bool)
    "empty rejected" true
    (match Ppv.make [] with _ -> false | exception Ppv.Invalid_ppv _ -> true);
  Alcotest.(check bool)
    "non-positive dropped then rejected" true
    (match Ppv.make [ (V.string "x", 0.0) ] with
    | _ -> false
    | exception Ppv.Invalid_ppv _ -> true)

let test_ppv_of_evidence_pignistic () =
  let p = Ppv.of_evidence (ev "[{red,green}^0.6; red^0.2; ~^0.2]") in
  (* red: .3 + .2 + .2/3; green: .3 + .2/3; blue: .2/3. *)
  Alcotest.check feq "red" (0.3 +. 0.2 +. (0.2 /. 3.0))
    (Ppv.prob_in p (Vs.of_strings [ "red" ]));
  Alcotest.check feq "blue only from omega" (0.2 /. 3.0)
    (Ppv.prob_in p (Vs.of_strings [ "blue" ]));
  Alcotest.check feq "total is one" 1.0
    (Ppv.prob_in p (D.values colors))

let test_ppv_merge_retains_inconsistency () =
  (* Contradictory certainties: Dempster raises; Tseng's mixture keeps
     both alternatives — the §1.3 contrast. *)
  let a = Ppv.definite (V.string "red") in
  let b = Ppv.definite (V.string "green") in
  let m = Ppv.merge a b in
  Alcotest.check feq "red survives at 0.5" 0.5
    (Ppv.prob_in m (Vs.of_strings [ "red" ]));
  Alcotest.check feq "green survives at 0.5" 0.5
    (Ppv.prob_in m (Vs.of_strings [ "green" ]));
  let w = Ppv.merge_weighted 0.8 a b in
  Alcotest.check feq "weighted mixture" 0.8
    (Ppv.prob_in w (Vs.of_strings [ "red" ]))

let test_ppv_relation_and_select () =
  let rel = Ppv.relation_of_extended extended in
  let hits =
    Ppv.select_is ~certainty:0.7 rel "color" (Vs.of_strings [ "red"; "green" ])
  in
  (* a: P(red or green) = 1; b: 0. *)
  Alcotest.(check int) "one qualifying tuple" 1 (List.length hits);
  let _, p = List.hd hits in
  Alcotest.check feq "with its probability" 1.0 p

let test_ppv_union () =
  let mk k p = { Ppv.key = V.string k; cells = [ ("color", p) ] } in
  let left = [ mk "a" (Ppv.definite (V.string "red")) ] in
  let right = [ mk "a" (Ppv.definite (V.string "green")); mk "b" (Ppv.definite (V.string "blue")) ] in
  let merged = Ppv.union left right in
  Alcotest.(check int) "never drops tuples" 2 (List.length merged)

let test_ppv_expected_value () =
  let p = Ppv.make [ (V.int 10, 0.5); (V.int 20, 0.5) ] in
  Alcotest.check feq "expected value" 15.0 (Ppv.expected_value p);
  Alcotest.(check bool)
    "non-numeric rejected" true
    (match Ppv.expected_value (Ppv.definite (V.string "x")) with
    | _ -> false
    | exception Ppv.Invalid_ppv _ -> true)

(* --- Lee's membership-less evidential model --------------------------- *)

module Lee = Baselines.Lee

let test_lee_of_extended () =
  let r = Lee.of_extended Paperdata.r_a in
  Alcotest.(check int) "six tuples" 6 (Lee.cardinal r);
  Alcotest.(check (list string))
    "evidential attributes only"
    [ "speciality"; "best-dish"; "rating" ]
    (Lee.attrs r);
  match Lee.find_opt r (V.string "garden") with
  | Some t ->
      Alcotest.check feq "evidence carried over" 0.5
        (M.mass (List.assoc "speciality" t.cells) (Vs.of_strings [ "si" ]))
  | None -> Alcotest.fail "garden missing"

let test_lee_union_matches_evidence_but_not_membership () =
  let a = Lee.of_extended Paperdata.r_a in
  let b = Lee.of_extended Paperdata.r_b in
  let merged, conflicts = Lee.union a b in
  Alcotest.(check int) "no conflicts on the paper data" 0
    (List.length conflicts);
  Alcotest.(check int) "six integrated tuples" 6 (Lee.cardinal merged);
  (* The evidence agrees with Table 4... *)
  let expected = Lee.of_extended Paperdata.table4 in
  List.iter
    (fun name ->
      match (Lee.find_opt merged (V.string name), Lee.find_opt expected (V.string name)) with
      | Some got, Some want ->
          List.iter
            (fun (attr, e) ->
              Alcotest.(check bool)
                (name ^ "." ^ attr ^ " matches Table 4")
                true
                (M.equal e (List.assoc attr want.Lee.cells)))
            got.Lee.cells
      | _ -> Alcotest.fail ("missing " ^ name))
    [ "garden"; "wok"; "country"; "olive"; "mehl"; "ashiana" ];
  (* ...but the membership story is gone: the paper's mehl row carries
     (0.5,0.5) ⊕ (0.8,1) = (0.83,0.83); Lee's model has nowhere to put
     it. That lost column is exactly the paper's §1.3 contribution
     claim. *)
  Alcotest.(check bool) "mehl indistinguishable from certain tuples" true
    (Lee.find_opt merged (V.string "mehl") <> None)

let test_lee_union_conflict_reporting () =
  let mk key ev =
    { Lee.key = V.string key;
      cells = [ ("color", Dst.Evidence.of_string colors ev) ] }
  in
  let a = Lee.make [ "color" ] [ mk "x" "[red^1]" ] in
  let b = Lee.make [ "color" ] [ mk "x" "[blue^1]" ] in
  let merged, conflicts = Lee.union a b in
  Alcotest.(check int) "pair dropped" 0 (Lee.cardinal merged);
  Alcotest.(check int) "conflict reported" 1 (List.length conflicts)

let test_lee_select_annotates () =
  let r = Lee.of_extended Paperdata.r_a in
  let hits = Lee.select r "speciality" (Vs.of_strings [ "si" ]) in
  (* garden (0.5, 0.75), wok (1, 1) and ashiana (0, 0.1 via its Ω mass)
     have Pls > 0 — but unlike the paper's σ̂, mehl's stale listing
     (membership (0.5, 0.5) in the extended model) is not reflected
     anywhere. *)
  Alcotest.(check int) "three plausible tuples" 3 (List.length hits);
  let garden_interval =
    List.find_map
      (fun ((t : Lee.tuple), iv) ->
        if V.equal t.key (V.string "garden") then Some iv else None)
      hits
  in
  (match garden_interval with
  | Some (bel, pls) ->
      Alcotest.check feq "Bel" 0.5 bel;
      Alcotest.check feq "Pls" 0.75 pls
  | None -> Alcotest.fail "garden missing");
  Alcotest.(check bool)
    "unknown attribute" true
    (match Lee.select r "bogus" (Vs.of_strings [ "si" ]) with
    | _ -> false
    | exception Lee.Lee_error _ -> true)

let test_lee_make_validation () =
  let fails f =
    Alcotest.(check bool)
      "raises Lee_error" true
      (match f () with _ -> false | exception Lee.Lee_error _ -> true)
  in
  let cell = ("color", Dst.Evidence.of_string colors "[red^1]") in
  fails (fun () ->
      Lee.make [ "color" ]
        [ { Lee.key = V.string "x"; cells = [] } ]);
  fails (fun () ->
      Lee.make [ "color" ]
        [ { Lee.key = V.string "x"; cells = [ cell ] };
          { Lee.key = V.string "x"; cells = [ cell ] } ])

(* --- Aggregates ------------------------------------------------------ *)

let value = Alcotest.testable V.pp V.equal

let test_aggregate_numeric () =
  let obs = [ V.int 100; V.int 140; V.int 120 ] in
  Alcotest.check value "average" (V.float 120.0) (Ag.resolve Ag.Average obs);
  Alcotest.check value "min" (V.int 100) (Ag.resolve Ag.Minimum obs);
  Alcotest.check value "max" (V.int 140) (Ag.resolve Ag.Maximum obs);
  Alcotest.check value "sum" (V.int 360) (Ag.resolve Ag.Sum obs);
  Alcotest.check value "first" (V.int 100) (Ag.resolve Ag.First obs);
  Alcotest.check value "last" (V.int 120) (Ag.resolve Ag.Last obs);
  Alcotest.check value "mixed int/float sum" (V.float 3.5)
    (Ag.resolve Ag.Sum [ V.int 1; V.float 2.5 ])

let test_aggregate_errors () =
  Alcotest.(check bool)
    "strings rejected" true
    (match Ag.resolve Ag.Average [ V.string "x" ] with
    | _ -> false
    | exception Ag.Not_numeric _ -> true);
  Alcotest.(check bool)
    "empty rejected" true
    (match Ag.resolve Ag.Average [] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* First/Last work on any kind: they don't aggregate. *)
  Alcotest.check value "first of strings" (V.string "x")
    (Ag.resolve Ag.First [ V.string "x"; V.string "y" ])

let test_aggregate_cells () =
  Alcotest.(check bool)
    "evidence cells rejected" true
    (match
       Ag.resolve_cells Ag.Average [ Erm.Etuple.Evidence (ev "[red^1]") ]
     with
    | _ -> false
    | exception Ag.Not_numeric _ -> true);
  Alcotest.(check bool) "applicable on numerics" true
    (Ag.applicable [ Erm.Etuple.Definite (V.int 1) ]);
  Alcotest.(check bool) "not applicable on evidence" false
    (Ag.applicable [ Erm.Etuple.Evidence (ev "[red^1]") ]);
  match
    Ag.resolve_cells Ag.Average
      [ Erm.Etuple.Definite (V.int 1); Erm.Etuple.Definite (V.int 2) ]
  with
  | Erm.Etuple.Definite v -> Alcotest.check value "resolve_cells" (V.float 1.5) v
  | Erm.Etuple.Evidence _ -> Alcotest.fail "expected a definite cell"

let () =
  Alcotest.run "baselines"
    [ ( "partial-values",
        [ Alcotest.test_case "of_evidence" `Quick test_pv_of_evidence;
          Alcotest.test_case "combine" `Quick test_pv_combine;
          Alcotest.test_case "satisfies_is" `Quick test_pv_satisfies;
          Alcotest.test_case "DS refines the 3 buckets" `Quick
            test_pv_refines_support;
          Alcotest.test_case "relation projection" `Quick
            test_pv_relation_roundtrip;
          Alcotest.test_case "union and select" `Quick
            test_pv_union_and_select ] );
      ( "prob-partial-values",
        [ Alcotest.test_case "make" `Quick test_ppv_make;
          Alcotest.test_case "pignistic projection" `Quick
            test_ppv_of_evidence_pignistic;
          Alcotest.test_case "mixture keeps inconsistency" `Quick
            test_ppv_merge_retains_inconsistency;
          Alcotest.test_case "relation and select" `Quick
            test_ppv_relation_and_select;
          Alcotest.test_case "union" `Quick test_ppv_union;
          Alcotest.test_case "expected value" `Quick test_ppv_expected_value
        ] );
      ( "lee",
        [ Alcotest.test_case "projection from extended" `Quick
            test_lee_of_extended;
          Alcotest.test_case "union: evidence yes, membership no" `Quick
            test_lee_union_matches_evidence_but_not_membership;
          Alcotest.test_case "conflict reporting" `Quick
            test_lee_union_conflict_reporting;
          Alcotest.test_case "select annotates intervals" `Quick
            test_lee_select_annotates;
          Alcotest.test_case "validation" `Quick test_lee_make_validation ] );
      ( "aggregates",
        [ Alcotest.test_case "numeric resolution" `Quick
            test_aggregate_numeric;
          Alcotest.test_case "errors" `Quick test_aggregate_errors;
          Alcotest.test_case "cells" `Quick test_aggregate_cells ] ) ]
