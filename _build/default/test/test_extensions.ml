(* Extensions beyond the paper's operator set: difference/intersection,
   ranking (and the query language's ORDER BY/LIMIT), summaries, and
   reliability-discounted merging. *)

module V = Dst.Value
module Vs = Dst.Vset
module D = Dst.Domain
module M = Dst.Mass.F
module S = Dst.Support

let feq = Alcotest.float 1e-9

let colors = D.of_strings "color" [ "red"; "green"; "blue" ]

let schema =
  Erm.Schema.make ~name:"items"
    ~key:[ Erm.Attr.definite "id" "string" ]
    ~nonkey:
      [ Erm.Attr.definite "bin" "string";
        Erm.Attr.evidential "color" colors ]

let item ?(tm = S.certain) ?(bin = "b1") id color =
  Erm.Etuple.make schema
    ~key:[ V.string id ]
    ~cells:
      [ Erm.Etuple.Definite (V.string bin);
        Erm.Etuple.Evidence (Dst.Evidence.of_string colors color) ]
    ~tm

let left =
  Erm.Relation.of_tuples schema
    [ item ~tm:(S.make ~sn:0.9 ~sp:1.0) "x1" "[red^0.7; ~^0.3]";
      item ~tm:(S.make ~sn:0.4 ~sp:0.6) "x2" ~bin:"b2" "[green^1]";
      item "x3" "[blue^0.5; ~^0.5]" ]

let right =
  Erm.Relation.of_tuples schema
    [ item "x1" "[red^0.6; ~^0.4]";
      item ~tm:(S.make ~sn:0.7 ~sp:0.9) "x9" "[green^1]" ]

(* --- difference and intersection ------------------------------------- *)

let test_difference () =
  let d = Erm.Ops.difference left right in
  Alcotest.(check int) "x2 and x3 remain" 2 (Erm.Relation.cardinal d);
  Alcotest.(check bool) "x1 removed" false
    (Erm.Relation.mem d [ V.string "x1" ]);
  (* Tuples pass through unchanged. *)
  Alcotest.(check bool) "x2 untouched" true
    (Erm.Etuple.equal
       (Erm.Relation.find d [ V.string "x2" ])
       (Erm.Relation.find left [ V.string "x2" ]));
  Alcotest.(check int) "difference against empty is identity" 3
    (Erm.Relation.cardinal (Erm.Ops.difference left (Erm.Relation.empty schema)))

let test_intersection () =
  let i = Erm.Ops.intersection left right in
  Alcotest.(check int) "only x1 is corroborated" 1 (Erm.Relation.cardinal i);
  let x1 = Erm.Relation.find i [ V.string "x1" ] in
  (* Same Dempster merge as union's matched branch. *)
  let u = Erm.Ops.union left right in
  Alcotest.(check bool) "merged identically to union" true
    (Erm.Etuple.equal x1 (Erm.Relation.find u [ V.string "x1" ]))

let test_set_algebra_decomposition () =
  (* union = intersection ∪ (left \ right) ∪ (right \ left), disjointly. *)
  let u = Erm.Ops.union left right in
  let parts =
    Erm.Relation.cardinal (Erm.Ops.intersection left right)
    + Erm.Relation.cardinal (Erm.Ops.difference left right)
    + Erm.Relation.cardinal (Erm.Ops.difference right left)
  in
  Alcotest.(check int) "partition sizes add up" (Erm.Relation.cardinal u) parts

(* --- ranking ---------------------------------------------------------- *)

let test_rank_sorted () =
  let ids r = List.map (fun t -> V.to_string (List.hd (Erm.Etuple.key t))) r in
  Alcotest.(check (list string))
    "descending sn: x3 (1), x1 (0.9), x2 (0.4)"
    [ "x3"; "x1"; "x2" ]
    (ids (Erm.Rank.sorted left));
  Alcotest.(check (list string))
    "ascending flips"
    [ "x2"; "x1"; "x3" ]
    (ids (Erm.Rank.sorted ~ascending:true left))

let test_rank_top_bottom () =
  let top2 = Erm.Rank.top 2 left in
  Alcotest.(check int) "top 2" 2 (Erm.Relation.cardinal top2);
  Alcotest.(check bool) "keeps x3 and x1" true
    (Erm.Relation.mem top2 [ V.string "x3" ]
    && Erm.Relation.mem top2 [ V.string "x1" ]);
  let bottom1 = Erm.Rank.bottom 1 left in
  Alcotest.(check bool) "bottom is x2" true
    (Erm.Relation.mem bottom1 [ V.string "x2" ]);
  Alcotest.(check int) "oversized k is fine" 3
    (Erm.Relation.cardinal (Erm.Rank.top 10 left));
  Alcotest.(check int) "k = 0" 0 (Erm.Relation.cardinal (Erm.Rank.top 0 left))

let test_rank_best_and_range () =
  (match Erm.Rank.best left with
  | Some t ->
      Alcotest.(check string) "best is x3" "x3"
        (V.to_string (List.hd (Erm.Etuple.key t)))
  | None -> Alcotest.fail "best on non-empty");
  (match Erm.Rank.membership_range left with
  | Some (weakest, strongest) ->
      Alcotest.check feq "weakest sn" 0.4 (S.sn weakest);
      Alcotest.check feq "strongest sn" 1.0 (S.sn strongest)
  | None -> Alcotest.fail "range on non-empty");
  Alcotest.(check bool) "best on empty" true
    (Erm.Rank.best (Erm.Relation.empty schema) = None)

let test_query_order_by_limit () =
  let env = [ ("items", left) ] in
  let top2 = Query.Eval.run env "items ORDER BY SN DESC LIMIT 2" in
  Alcotest.(check int) "limit 2" 2 (Erm.Relation.cardinal top2);
  Alcotest.(check bool) "keeps the most certain" true
    (Erm.Relation.mem top2 [ V.string "x3" ]);
  let worst = Query.Eval.run env "items ORDER BY SN ASC LIMIT 1" in
  Alcotest.(check bool) "ascending keeps the weakest" true
    (Erm.Relation.mem worst [ V.string "x2" ]);
  let bare_limit = Query.Eval.run env "items LIMIT 1" in
  Alcotest.(check int) "bare LIMIT defaults to best-by-sn" 1
    (Erm.Relation.cardinal bare_limit);
  let no_limit = Query.Eval.run env "items ORDER BY SP DESC" in
  Alcotest.(check int) "ORDER BY without LIMIT is the identity" 3
    (Erm.Relation.cardinal no_limit);
  let combined =
    Query.Eval.run env
      "SELECT id, color FROM items WHERE color IS {red, green} ORDER BY SN \
       DESC LIMIT 1"
  in
  Alcotest.(check bool) "composes with selection" true
    (Erm.Relation.mem combined [ V.string "x1" ])

let test_query_order_by_optimizer () =
  let env = [ ("items", left) ] in
  let q = Query.Parser.parse "(SELECT * FROM items) ORDER BY SN DESC" in
  (* ORDER BY without LIMIT disappears; the trivial select too. *)
  (match Query.Plan.optimize env q with
  | Query.Ast.Rel "items" -> ()
  | q' -> Alcotest.failf "expected plain items, got %s" (Query.Ast.to_string q'));
  let q2 = Query.Parser.parse "items ORDER BY SN DESC LIMIT 2" in
  Alcotest.(check bool) "optimize preserves ranked results" true
    (Erm.Relation.equal (Query.Eval.eval env q2)
       (Query.Plan.eval_optimized env q2))

(* --- summaries -------------------------------------------------------- *)

let test_cardinality_interval () =
  let sn, sp = Erm.Summarize.cardinality_interval left in
  Alcotest.check feq "sum of sn" 2.3 sn;
  Alcotest.check feq "sum of sp" 2.6 sp;
  let esn, esp =
    Erm.Summarize.cardinality_interval (Erm.Relation.empty schema)
  in
  Alcotest.check feq "empty sn" 0.0 esn;
  Alcotest.check feq "empty sp" 0.0 esp

let test_count_where () =
  let sn, sp =
    Erm.Summarize.count_where
      (Erm.Predicate.is_values "color" [ "red" ])
      left
  in
  (* x1: (0.9, 1)·(0.7, 1) = (0.63, 1); x3: Bel(red)=0, Pls=0.5 -> sn 0,
     dropped by closure; x2: 0. *)
  Alcotest.check feq "expected count lower bound" 0.63 sn;
  Alcotest.check feq "upper bound" 1.0 sp

let test_pool_and_histogram () =
  let pooled = Erm.Summarize.pool_evidence left "color" in
  Alcotest.check feq "pool weights by sn and normalizes" 1.0
    (List.fold_left (fun acc (_, x) -> acc +. x) 0.0 (M.focals pooled));
  (* green gets x2's full weight 0.4 out of 2.3. *)
  Alcotest.check feq "green share" (0.4 /. 2.3)
    (M.mass pooled (Vs.of_strings [ "green" ]));
  let hist = Erm.Summarize.pignistic_histogram left "color" in
  Alcotest.check feq "histogram sums to one" 1.0
    (List.fold_left (fun acc (_, p) -> acc +. p) 0.0 hist);
  Alcotest.(check bool)
    "pooling a definite attribute fails" true
    (match Erm.Summarize.pool_evidence left "bin" with
    | _ -> false
    | exception Erm.Etuple.Tuple_error _ -> true)

let test_group_count () =
  let groups = Erm.Summarize.group_count_by_definite left "bin" in
  Alcotest.(check int) "two bins" 2 (List.length groups);
  let b1_sn, b1_sp = List.assoc (V.string "b1") groups in
  Alcotest.check feq "b1 necessary count" 1.9 b1_sn;
  Alcotest.check feq "b1 possible count" 2.0 b1_sp

(* --- reliability ------------------------------------------------------ *)

let test_assess () =
  let a = Integration.Reliability.assess left right in
  (* One shared key (x1) with 2 cells: bin agrees (0), color kappa =
     0.7·0.6·0 …: [red^.7,Ω^.3] vs [red^.6,Ω^.4] never conflict -> 0. *)
  Alcotest.(check int) "two cell pairs" 2 a.pairs_compared;
  Alcotest.check feq "no conflict" 0.0 a.mean_conflict;
  Alcotest.check feq "full reliability" 1.0
    (Integration.Reliability.reliability_of_assessment a);
  (* x2's evidence is [green^1]; a source certain of red on the same
     key is in total conflict on that cell. *)
  let disagreeing =
    Erm.Relation.of_tuples schema [ item ~bin:"b2" "x2" "[red^1]" ]
  in
  let a2 = Integration.Reliability.assess left disagreeing in
  Alcotest.(check int) "one total conflict" 1 a2.total_conflicts;
  Alcotest.(check bool) "reliability drops" true
    (Integration.Reliability.reliability_of_assessment a2 < 1.0)

let test_discount_relation () =
  let d = Integration.Reliability.discount_relation 0.5 left in
  let x1 = Erm.Relation.find d [ V.string "x1" ] in
  Alcotest.check feq "membership sn halves" 0.45 (S.sn (Erm.Etuple.tm x1));
  Alcotest.check feq "membership sp widens" 1.0 (S.sp (Erm.Etuple.tm x1));
  Alcotest.check feq "evidence discounted" 0.35
    (M.mass (Erm.Etuple.evidence schema x1 "color") (Vs.of_strings [ "red" ]));
  Alcotest.(check bool)
    "alpha out of range" true
    (match Integration.Reliability.discount_relation 2.0 left with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_merge_discounted_avoids_conflict () =
  let a = Erm.Relation.of_tuples schema [ item "k" "[red^1]" ] in
  let b = Erm.Relation.of_tuples schema [ item "k" "[green^1]" ] in
  (* Plain merge reports a conflict and loses the tuple... *)
  let plain = Integration.Merge.by_key a b in
  Alcotest.(check int) "plain merge loses the pair" 0
    (Erm.Relation.cardinal plain.integrated);
  (* ...the discounted merge keeps it with softened evidence. *)
  let soft =
    Integration.Reliability.merge_discounted ~alpha_left:0.8 ~alpha_right:0.8
      a b
  in
  Alcotest.(check int) "discounted merge keeps it" 1
    (Erm.Relation.cardinal soft.integrated);
  Alcotest.(check int) "no conflicts" 0 (List.length soft.conflicts);
  let t = Erm.Relation.find soft.integrated [ V.string "k" ] in
  let color = Erm.Etuple.evidence schema t "color" in
  Alcotest.check feq "symmetric disagreement" (M.mass color (Vs.of_strings [ "red" ]))
    (M.mass color (Vs.of_strings [ "green" ]))

let test_merge_discounted_estimates () =
  (* With no explicit alphas, reliability is estimated from conflict;
     agreeing sources keep alpha = 1 and behave like a plain merge. *)
  let plain = Integration.Merge.by_key left right in
  let estimated = Integration.Reliability.merge_discounted left right in
  Alcotest.(check bool) "agreeing sources merge identically" true
    (Erm.Relation.equal plain.integrated estimated.integrated)

(* --- incremental integration ------------------------------------------ *)

let test_incremental_insert_and_combine () =
  let store = Integration.Incremental.init Paperdata.schema in
  let store =
    Integration.Incremental.absorb
      (Integration.Incremental.absorb store Paperdata.r_a)
      Paperdata.r_b
  in
  Alcotest.(check bool)
    "streaming both sources reproduces Table 4" true
    (Erm.Relation.equal (Integration.Incremental.relation store)
       Paperdata.table4);
  Alcotest.(check int) "11 observations" 11
    (Integration.Incremental.observations store);
  Alcotest.(check int) "no conflicts on the paper data" 0
    (List.length (Integration.Incremental.conflicts store))

let test_incremental_conflict_keeps_store () =
  let store =
    Integration.Incremental.of_relation
      (Erm.Relation.of_tuples schema [ item "k" "[red^1]" ])
  in
  let store = Integration.Incremental.observe store (item "k" "[green^1]") in
  Alcotest.(check int) "conflict logged" 1
    (List.length (Integration.Incremental.conflicts store));
  let kept =
    Erm.Relation.find (Integration.Incremental.relation store) [ V.string "k" ]
  in
  Alcotest.check feq "stored tuple kept (first writer wins)" 1.0
    (M.mass (Erm.Etuple.evidence schema kept "color") (Vs.of_strings [ "red" ]))

let test_incremental_ignores_sn_zero () =
  let store = Integration.Incremental.init schema in
  let ghost = item ~tm:S.unknown "g" "[red^1]" in
  let store = Integration.Incremental.observe store ghost in
  Alcotest.(check int) "nothing stored" 0
    (Erm.Relation.cardinal (Integration.Incremental.relation store));
  Alcotest.(check int) "but counted" 1
    (Integration.Incremental.observations store)

let test_incremental_order_insensitive () =
  (* Dempster commutes/associates, so absorption order cannot matter. *)
  let forward =
    Integration.Incremental.absorb
      (Integration.Incremental.of_relation left)
      right
  in
  let backward =
    Integration.Incremental.absorb
      (Integration.Incremental.of_relation right)
      left
  in
  Alcotest.(check bool) "order-insensitive store" true
    (Erm.Relation.equal
       (Integration.Incremental.relation forward)
       (Integration.Incremental.relation backward))

(* --- render formats ---------------------------------------------------- *)

let test_render_csv () =
  let csv = Erm.Render.to_csv left in
  let lines = String.split_on_char '
' (String.trim csv) in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check string) "header" "id,bin,color,\"(sn,sp)\"" (List.hd lines);
  Alcotest.(check bool) "evidence fields are quoted (commas inside)" true
    (String.length csv > 0
    && List.for_all
         (fun l -> String.length l > 0)
         lines)

let test_render_markdown () =
  let md = Erm.Render.to_markdown ~title:"items" left in
  let lines = String.split_on_char '
' (String.trim md) in
  (* title, blank, header, rule, 3 rows *)
  Alcotest.(check int) "7 lines" 7 (List.length lines);
  Alcotest.(check string) "title" "**items**" (List.hd lines);
  Alcotest.(check bool) "rule line is dashes" true
    (String.length (List.nth lines 3) > 0
    && String.contains (List.nth lines 3) '-');
  (* every row has the header's column count *)
  let header_cols =
    List.length (String.split_on_char '|' (List.nth lines 2))
  in
  List.iteri
    (fun i l ->
      if i >= 2 then
        Alcotest.(check int)
          (Printf.sprintf "row %d column count" i)
          header_cols
          (List.length (String.split_on_char '|' l)))
    lines

let () =
  Alcotest.run "extensions"
    [ ( "set-algebra",
        [ Alcotest.test_case "difference" `Quick test_difference;
          Alcotest.test_case "intersection" `Quick test_intersection;
          Alcotest.test_case "partition decomposition" `Quick
            test_set_algebra_decomposition ] );
      ( "rank",
        [ Alcotest.test_case "sorted" `Quick test_rank_sorted;
          Alcotest.test_case "top/bottom" `Quick test_rank_top_bottom;
          Alcotest.test_case "best and range" `Quick test_rank_best_and_range;
          Alcotest.test_case "ORDER BY / LIMIT" `Quick
            test_query_order_by_limit;
          Alcotest.test_case "optimizer interaction" `Quick
            test_query_order_by_optimizer ] );
      ( "summarize",
        [ Alcotest.test_case "cardinality interval" `Quick
            test_cardinality_interval;
          Alcotest.test_case "count_where" `Quick test_count_where;
          Alcotest.test_case "pool and histogram" `Quick
            test_pool_and_histogram;
          Alcotest.test_case "group counts" `Quick test_group_count ] );
      ( "reliability",
        [ Alcotest.test_case "assess" `Quick test_assess;
          Alcotest.test_case "discount relation" `Quick
            test_discount_relation;
          Alcotest.test_case "discounted merge resolves conflict" `Quick
            test_merge_discounted_avoids_conflict;
          Alcotest.test_case "estimated alphas" `Quick
            test_merge_discounted_estimates ] );
      ( "incremental",
        [ Alcotest.test_case "stream reproduces Table 4" `Quick
            test_incremental_insert_and_combine;
          Alcotest.test_case "conflict keeps the store" `Quick
            test_incremental_conflict_keeps_store;
          Alcotest.test_case "sn = 0 ignored" `Quick
            test_incremental_ignores_sn_zero;
          Alcotest.test_case "order-insensitive" `Quick
            test_incremental_order_insensitive ] );
      ( "render",
        [ Alcotest.test_case "csv" `Quick test_render_csv;
          Alcotest.test_case "markdown" `Quick test_render_markdown ] ) ]
