(* The possibilistic bridge: contour validation, Π/N measures, the exact
   correspondence with consonant mass functions, and the outer consonant
   approximation — plus qcheck laws. *)

module V = Dst.Value
module Vs = Dst.Vset
module D = Dst.Domain
module M = Dst.Mass.F
module P = Dst.Possibility
module S = Dst.Support

let feq = Alcotest.float 1e-9
let frame = D.of_strings "size" [ "small"; "medium"; "large"; "huge" ]

let pi =
  P.make frame
    [ (V.string "medium", 1.0); (V.string "small", 0.7);
      (V.string "large", 0.3) ]

let test_make_validation () =
  Alcotest.check_raises "no value at 1 is contradiction" P.Not_normalized
    (fun () -> ignore (P.make frame [ (V.string "small", 0.4) ]));
  Alcotest.(check bool)
    "outside frame rejected" true
    (match P.make frame [ (V.string "giant", 1.0) ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "degree above 1 rejected" true
    (match P.make frame [ (V.string "small", 1.4) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_measures () =
  Alcotest.check feq "pi(medium)" 1.0 (P.possibility_of pi (V.string "medium"));
  Alcotest.check feq "pi(huge) defaults to 0" 0.0
    (P.possibility_of pi (V.string "huge"));
  Alcotest.check feq "Pi of a set is the max" 0.7
    (P.possibility pi (Vs.of_strings [ "small"; "large" ]));
  Alcotest.check feq "Pi of empty set" 0.0 (P.possibility pi Vs.empty);
  (* N(A) = 1 - Pi(complement): complement of {medium,small} is
     {large,huge} with Pi = 0.3. *)
  Alcotest.check feq "necessity" 0.7
    (P.necessity pi (Vs.of_strings [ "medium"; "small" ]));
  Alcotest.check feq "N(omega) = 1" 1.0 (P.necessity pi (D.values frame));
  let s = P.support pi (Vs.of_strings [ "medium" ]) in
  Alcotest.check feq "support sn = N" 0.3 (S.sn s);
  Alcotest.check feq "support sp = Pi" 1.0 (S.sp s)

let test_necessity_le_possibility () =
  List.iter
    (fun names ->
      let set = Vs.of_strings names in
      Alcotest.(check bool)
        "N <= Pi" true
        (P.necessity pi set <= P.possibility pi set +. 1e-12))
    [ [ "small" ]; [ "medium" ]; [ "large"; "huge" ]; [ "small"; "medium" ] ]

let test_to_mass_levels () =
  let m = P.to_mass pi in
  (* Levels 1 > 0.7 > 0.3: {medium}^0.3, {medium,small}^0.4,
     {medium,small,large}^0.3. *)
  Alcotest.check feq "innermost cut" 0.3
    (M.mass m (Vs.of_strings [ "medium" ]));
  Alcotest.check feq "middle cut" 0.4
    (M.mass m (Vs.of_strings [ "medium"; "small" ]));
  Alcotest.check feq "outer cut" 0.3
    (M.mass m (Vs.of_strings [ "medium"; "small"; "large" ]));
  Alcotest.(check bool) "consonant by construction" true (M.is_consonant m)

let test_consonant_roundtrip () =
  let m = P.to_mass pi in
  let pi' = P.of_consonant m in
  List.iter
    (fun v ->
      Alcotest.check feq
        ("contour preserved at " ^ v)
        (P.possibility_of pi (V.string v))
        (P.possibility_of pi' (V.string v)))
    [ "small"; "medium"; "large"; "huge" ];
  (* And measures agree with Bel/Pls on the consonant body. *)
  let set = Vs.of_strings [ "medium"; "small" ] in
  Alcotest.check feq "Pi = Pls" (M.pls m set) (P.possibility pi set);
  Alcotest.check feq "N = Bel" (M.bel m set) (P.necessity pi set)

let test_of_consonant_rejects () =
  let split =
    M.make frame
      [ (Vs.of_strings [ "small" ], 0.5); (Vs.of_strings [ "large" ], 0.5) ]
  in
  Alcotest.(check bool)
    "non-consonant rejected" true
    (match P.of_consonant split with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_consonant_approximation () =
  let split =
    M.make frame
      [ (Vs.of_strings [ "small" ], 0.6); (Vs.of_strings [ "large" ], 0.4) ]
  in
  let approx = P.consonant_approximation split in
  Alcotest.check feq "most plausible value normalized to 1" 1.0
    (P.possibility_of approx (V.string "small"));
  Alcotest.check feq "runner-up keeps its ratio" (0.4 /. 0.6)
    (P.possibility_of approx (V.string "large"));
  (* Exact on consonant inputs. *)
  let pi' = P.consonant_approximation (P.to_mass pi) in
  List.iter
    (fun v ->
      Alcotest.check feq ("exact on consonant: " ^ v)
        (P.possibility_of pi (V.string v))
        (P.possibility_of pi' (V.string v)))
    [ "small"; "medium"; "large" ]

(* qcheck: consonant correspondence laws on random contours. *)
let prop name law =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:300 (QCheck.int_range 0 100000) law)

let random_contour seed =
  let rng = Workload.Rng.create seed in
  let values = Vs.to_list (D.values frame) in
  let top = List.nth values (Workload.Rng.int rng (List.length values)) in
  List.map
    (fun v ->
      if V.equal v top then (v, 1.0)
      else (v, float_of_int (Workload.Rng.int rng 11) /. 10.0))
    values

let qcheck_tests =
  [ prop "to_mass is well-formed and consonant" (fun s ->
        let p = P.make frame (random_contour s) in
        let m = P.to_mass p in
        M.is_consonant m
        && Float.abs
             (List.fold_left (fun acc (_, x) -> acc +. x) 0.0 (M.focals m)
             -. 1.0)
           <= 1e-9);
    prop "of_consonant inverts to_mass" (fun s ->
        let p = P.make frame (random_contour s) in
        let p' = P.of_consonant (P.to_mass p) in
        List.for_all
          (fun v ->
            Float.abs (P.possibility_of p v -. P.possibility_of p' v) <= 1e-9)
          (Vs.to_list (D.values frame)));
    prop "support pairs are valid and ordered" (fun s ->
        let p = P.make frame (random_contour s) in
        let rng = Workload.Rng.create (s + 13) in
        let set = Workload.Gen.vset rng frame ~max_size:3 in
        let sup = P.support p set in
        S.sn sup <= S.sp sup +. 1e-12);
    prop "approximation dominates plausibility on singletons" (fun s ->
        let rng = Workload.Rng.create (s + 31) in
        let m = Workload.Gen.evidence rng ~focals:4 ~max_focal_size:3 frame in
        let p = P.consonant_approximation m in
        List.for_all
          (fun v ->
            P.possibility_of p v >= M.pls m (Vs.singleton v) -. 1e-9)
          (Vs.to_list (D.values frame))) ]

let () =
  Alcotest.run "possibility"
    [ ( "unit",
        [ Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "measures" `Quick test_measures;
          Alcotest.test_case "N <= Pi" `Quick test_necessity_le_possibility;
          Alcotest.test_case "to_mass level cuts" `Quick test_to_mass_levels;
          Alcotest.test_case "consonant roundtrip" `Quick
            test_consonant_roundtrip;
          Alcotest.test_case "of_consonant rejects" `Quick
            test_of_consonant_rejects;
          Alcotest.test_case "consonant approximation" `Quick
            test_consonant_approximation ] );
      ("laws", qcheck_tests) ]
