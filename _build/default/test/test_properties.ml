(* Property-based tests (qcheck): DS-theoretic invariants of mass
   functions and combination, support-pair algebra, Theorem 1 (closure
   and boundedness of the five extended operators), operator laws, query
   optimizer soundness, and serialization round-trips — all on
   workload-generated structures.

   Complex structures are generated deterministically from an integer
   seed drawn by qcheck, via the Workload generators. *)

module M = Dst.Mass.F
module S = Dst.Support
module Vs = Dst.Vset
module D = Dst.Domain
module R = Workload.Rng
module G = Workload.Gen

let prop ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let seed_arb = QCheck.int_range 0 1_000_000

(* --- generators ----------------------------------------------------- *)

let dom8 = G.domain ~size:8 "d"

let gen_evidence seed =
  G.evidence (R.create seed) ~focals:4 ~max_focal_size:3 dom8

let gen_set seed =
  G.vset (R.create (seed + 7919)) dom8 ~max_size:4

let gen_support seed = G.support (R.create seed)

let schema = G.schema "props"

let gen_relation ?(size = 12) seed = G.relation (R.create seed) ~size schema

let gen_pair seed =
  G.source_pair (R.create seed) ~size:12 ~overlap:0.5 schema

(* A random is/θ predicate over the generated schema. *)
let gen_predicate seed =
  let rng = R.create (seed + 104729) in
  let attr = if R.bool rng then "e0" else "e1" in
  let set = G.vset rng dom8 ~max_size:3 in
  match R.int rng 3 with
  | 0 -> Erm.Predicate.is_ attr set
  | 1 ->
      Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field attr)
        (Erm.Predicate.Const
           (Erm.Etuple.Evidence (M.certain_set (D.make "lit" set) set)))
  | _ ->
      Erm.Predicate.(
        is_ "e0" set &&& is_values "e1" [ "v0"; "v1"; "v2" ])

let gen_threshold seed =
  let rng = R.create (seed + 1299709) in
  match R.int rng 4 with
  | 0 -> Erm.Threshold.always
  | 1 -> Erm.Threshold.sn_gt (R.float rng 0.8)
  | 2 -> Erm.Threshold.sp_ge (R.float rng 0.8)
  | _ -> Erm.Threshold.(sn_gt 0.1 &&& sp_ge 0.3)

(* --- mass function invariants --------------------------------------- *)

let total m = List.fold_left (fun acc (_, x) -> acc +. x) 0.0 (M.focals m)

let well_formed m =
  Float.abs (total m -. 1.0) <= 1e-9
  && List.for_all
       (fun (set, x) -> (not (Vs.is_empty set)) && x > 0.0)
       (M.focals m)

let mass_props =
  [ prop "generated evidence is well-formed" seed_arb (fun s ->
        well_formed (gen_evidence s));
    prop "Bel <= Pls on random sets" seed_arb (fun s ->
        let m = gen_evidence s and set = gen_set s in
        let bel, pls = M.interval m set in
        bel <= pls +. 1e-12);
    prop "Bel(A) + Bel(complement) <= 1" seed_arb (fun s ->
        let m = gen_evidence s and set = gen_set s in
        M.bel m set +. M.doubt m set <= 1.0 +. 1e-9);
    prop "Pls(A) = 1 - Bel(complement)" seed_arb (fun s ->
        let m = gen_evidence s and set = gen_set s in
        Float.abs (M.pls m set -. (1.0 -. M.doubt m set)) <= 1e-9);
    prop "pignistic lies in the belief interval" seed_arb (fun s ->
        let m = gen_evidence s and set = gen_set s in
        let betp =
          List.fold_left
            (fun acc (v, p) -> if Vs.mem v set then acc +. p else acc)
            0.0 (M.pignistic m)
        in
        let bel, pls = M.interval m set in
        bel -. 1e-9 <= betp && betp <= pls +. 1e-9);
    prop "discount widens the belief interval" seed_arb (fun s ->
        let m = gen_evidence s and set = gen_set s in
        let d = M.discount 0.7 m in
        M.bel d set <= M.bel m set +. 1e-9
        && M.pls d set >= M.pls m set -. 1e-9) ]

let combine_props =
  [ prop "combination is well-formed" seed_arb (fun s ->
        let a = gen_evidence s and b = gen_evidence (s + 1) in
        well_formed (M.combine a b));
    prop "combination commutes" seed_arb (fun s ->
        let a = gen_evidence s and b = gen_evidence (s + 1) in
        M.equal (M.combine a b) (M.combine b a));
    prop "combination associates" ~count:100 seed_arb (fun s ->
        let a = gen_evidence s
        and b = gen_evidence (s + 1)
        and c = gen_evidence (s + 2) in
        M.equal (M.combine (M.combine a b) c) (M.combine a (M.combine b c)));
    prop "vacuous is the identity" seed_arb (fun s ->
        let a = gen_evidence s in
        M.equal a (M.combine a (M.vacuous dom8)));
    prop "kappa is symmetric and in [0,1)" seed_arb (fun s ->
        let a = gen_evidence s and b = gen_evidence (s + 1) in
        let k = M.conflict a b in
        Float.abs (k -. M.conflict b a) <= 1e-12 && k >= 0.0 && k < 1.0);
    prop "yager and dubois-prade stay well-formed" seed_arb (fun s ->
        let a = gen_evidence s and b = gen_evidence (s + 1) in
        well_formed (M.combine_yager a b)
        && well_formed (M.combine_dubois_prade a b)
        && well_formed (M.combine_average a b)
        && well_formed (M.combine_disjunctive a b));
    prop "combination never decreases Bel of agreed sets below inputs' min"
      ~count:100 seed_arb
      (fun s ->
        (* Dempster specializes: Pls never exceeds either input's Pls
           on singleton-free conflicts is not a law, but Q (commonality)
           multiplies then normalizes: Q12(A) = Q1(A)·Q2(A)/(1-κ). *)
        let a = gen_evidence s and b = gen_evidence (s + 1) in
        let set = gen_set s in
        let k = M.conflict a b in
        let c = M.combine a b in
        Float.abs
          ((M.commonality c set *. (1.0 -. k))
          -. (M.commonality a set *. M.commonality b set))
        <= 1e-9) ]

(* --- support-pair algebra ------------------------------------------- *)

let support_props =
  [ prop "f_tm commutes and stays valid" seed_arb (fun s ->
        let a = gen_support s and b = gen_support (s + 1) in
        S.equal (S.f_tm a b) (S.f_tm b a));
    prop "f_tm associates" seed_arb (fun s ->
        let a = gen_support s
        and b = gen_support (s + 1)
        and c = gen_support (s + 2) in
        S.equal (S.f_tm a (S.f_tm b c)) (S.f_tm (S.f_tm a b) c));
    prop "support combination commutes" seed_arb (fun s ->
        let a = gen_support s and b = gen_support (s + 1) in
        S.equal (S.combine a b) (S.combine b a));
    prop "support combination associates" ~count:100 seed_arb (fun s ->
        let a = gen_support s
        and b = gen_support (s + 1)
        and c = gen_support (s + 2) in
        S.equal (S.combine a (S.combine b c)) (S.combine (S.combine a b) c));
    prop "combination agrees with the boolean-frame mass function"
      seed_arb
      (fun s ->
        let a = gen_support s and b = gen_support (s + 1) in
        S.equal (S.combine a b) (S.of_mass (M.combine (S.to_mass a) (S.to_mass b))));
    prop "negation is involutive" seed_arb (fun s ->
        let a = gen_support s in
        S.equal a (S.negation (S.negation a)));
    prop "de morgan for the extension connectives" seed_arb (fun s ->
        let a = gen_support s and b = gen_support (s + 1) in
        S.equal
          (S.negation (S.conjunction a b))
          (S.disjunction (S.negation a) (S.negation b))) ]

(* --- Theorem 1: closure --------------------------------------------- *)

let cwa = Erm.Relation.satisfies_cwa

let closure_props =
  [ prop "selection closure" seed_arb (fun s ->
        cwa
          (Erm.Ops.select
             ~threshold:(gen_threshold s)
             (gen_predicate s) (gen_relation s)));
    prop "projection closure" seed_arb (fun s ->
        cwa (Erm.Ops.project [ "k"; "e0" ] (gen_relation s)));
    prop "union closure" seed_arb (fun s ->
        let a, b = gen_pair s in
        cwa (Erm.Ops.union a b));
    prop "product closure" ~count:50 seed_arb (fun s ->
        let a = gen_relation ~size:6 s in
        let b =
          Erm.Ops.rename_attrs (fun n -> "r_" ^ n) (gen_relation ~size:6 (s + 1))
        in
        cwa (Erm.Ops.product a b));
    prop "join closure" ~count:50 seed_arb (fun s ->
        let a = gen_relation ~size:6 s in
        let b =
          Erm.Ops.rename_attrs (fun n -> "r_" ^ n) (gen_relation ~size:6 (s + 1))
        in
        cwa
          (Erm.Ops.join
             (Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field "e0")
                (Erm.Predicate.Field "r_e0"))
             a b)) ]

(* --- Theorem 1: boundedness ----------------------------------------- *)

(* Augment a relation with complement tuples: fresh keys, sn = 0. The
   boundedness property says operators over the augmented relation give
   exactly the same sn > 0 tuples. *)
let with_complement seed r =
  let rng = R.create (seed + 15485863) in
  let complements =
    List.init 5 (fun i ->
        let t =
          Erm.Relation.find r
            (List.nth
               (List.map Erm.Etuple.key (Erm.Relation.tuples r))
               (R.int rng (Erm.Relation.cardinal r)))
        in
        Erm.Etuple.make schema
          ~key:[ Dst.Value.string (Printf.sprintf "ghost%d" i) ]
          ~cells:(Erm.Etuple.cells t)
          ~tm:(S.make ~sn:0.0 ~sp:(R.float rng 1.0)))
  in
  List.fold_left Erm.Relation.add_unchecked r complements

let rel_equal = Erm.Relation.equal

let boundedness_props =
  [ prop "selection boundedness" seed_arb (fun s ->
        let r = gen_relation s in
        let aug = with_complement s r in
        rel_equal
          (Erm.Ops.select (gen_predicate s) r)
          (Erm.Ops.select (gen_predicate s) aug));
    prop "projection boundedness" seed_arb (fun s ->
        let r = gen_relation s in
        rel_equal
          (Erm.Ops.project [ "k"; "e1" ] r)
          (Erm.Ops.project [ "k"; "e1" ] (with_complement s r)));
    prop "union boundedness" seed_arb (fun s ->
        let a, b = gen_pair s in
        rel_equal (Erm.Ops.union a b)
          (Erm.Ops.union (with_complement s a) b));
    prop "product boundedness" ~count:50 seed_arb (fun s ->
        let a = gen_relation ~size:5 s in
        let b =
          Erm.Ops.rename_attrs (fun n -> "r_" ^ n) (gen_relation ~size:5 (s + 1))
        in
        rel_equal (Erm.Ops.product a b)
          (Erm.Ops.product (with_complement s a) b)) ]

(* --- operator laws --------------------------------------------------- *)

let operator_props =
  [ prop "union commutes" seed_arb (fun s ->
        let a, b = gen_pair s in
        rel_equal (Erm.Ops.union a b) (Erm.Ops.union b a));
    prop "union associates" ~count:50 seed_arb (fun s ->
        let a, b = gen_pair s in
        let c = G.reobserve (R.create (s + 17)) a in
        rel_equal
          (Erm.Ops.union (Erm.Ops.union a b) c)
          (Erm.Ops.union a (Erm.Ops.union b c)));
    prop "union with self-complement only reinforces" ~count:50 seed_arb
      (fun s ->
        (* x ∪ x: same keys, Dempster-reinforced; cardinality equal. *)
        let a = gen_relation s in
        Erm.Relation.cardinal (Erm.Ops.union a a) = Erm.Relation.cardinal a);
    prop "join = select of product" ~count:50 seed_arb (fun s ->
        let a = gen_relation ~size:5 s in
        let b =
          Erm.Ops.rename_attrs (fun n -> "r_" ^ n) (gen_relation ~size:5 (s + 1))
        in
        let pred =
          Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field "e1")
            (Erm.Predicate.Field "r_e1")
        in
        let threshold = gen_threshold s in
        rel_equal
          (Erm.Ops.join ~threshold pred a b)
          (Erm.Ops.select ~threshold pred (Erm.Ops.product a b)));
    prop "selection cascade = conjunction" seed_arb (fun s ->
        let r = gen_relation s in
        let p = gen_predicate s and q = gen_predicate (s + 31) in
        rel_equal
          (Erm.Ops.select p (Erm.Ops.select q r))
          (Erm.Ops.select (Erm.Predicate.And (p, q)) r));
    prop "stricter thresholds select subsets" seed_arb (fun s ->
        let r = gen_relation s in
        let p = gen_predicate s in
        let loose = Erm.Ops.select ~threshold:(Erm.Threshold.sn_gt 0.2) p r in
        let strict = Erm.Ops.select ~threshold:(Erm.Threshold.sn_gt 0.6) p r in
        Erm.Relation.for_all
          (fun t -> Erm.Relation.mem loose (Erm.Etuple.key t))
          strict) ]

(* --- optimizer soundness --------------------------------------------- *)

let plan_props =
  [ prop "optimize preserves select-over-join results" ~count:50 seed_arb
      (fun s ->
        let a = gen_relation ~size:5 s in
        let b =
          Erm.Ops.rename_attrs (fun n -> "r_" ^ n) (gen_relation ~size:5 (s + 1))
        in
        let env = [ ("a", a); ("b", b) ] in
        let rng = R.create (s + 777) in
        let v = "v" ^ string_of_int (R.int rng 8) in
        let q =
          Query.Parser.parse
            (Printf.sprintf
               "SELECT * FROM (a JOIN b ON e0 = r_e0) WHERE e1 IS {%s} AND \
                r_e1 IS {%s} WITH SN > 0.05"
               v v)
        in
        rel_equal (Query.Eval.eval env q) (Query.Plan.eval_optimized env q));
    prop "optimize preserves cascaded selects" ~count:50 seed_arb (fun s ->
        let a = gen_relation s in
        let env = [ ("a", a) ] in
        let rng = R.create (s + 888) in
        let v k = "v" ^ string_of_int (R.int rng k) in
        let q =
          Query.Parser.parse
            (Printf.sprintf
               "SELECT k, e0 FROM (SELECT * FROM a WHERE e0 IS {%s, %s}) \
                WHERE e1 IS {%s} WITH SP >= 0.2"
               (v 8) (v 8) (v 8))
        in
        rel_equal (Query.Eval.eval env q) (Query.Plan.eval_optimized env q)) ]

(* --- numeric representation differential ----------------------------- *)

module Mq = Dst.Mass.Make (Dst.Num.Rational)

let dyadic_evidence seed =
  (* Random masses in 64ths over random focal sets: exactly convertible
     to rationals, so the two Mass instances must agree to rounding. *)
  let rng = R.create (seed + 909091) in
  let sets =
    List.sort_uniq Vs.compare (List.init 3 (fun _ -> G.vset rng dom8 ~max_size:3))
  in
  let n = List.length sets in
  let raw = List.init (n - 1) (fun _ -> 1 + R.int rng 16) in
  let used = List.fold_left ( + ) 0 raw in
  let weights = raw @ [ 64 - used ] in
  List.map2 (fun set w -> (set, w)) sets weights

let differential_props =
  [ prop "float and rational combination agree" ~count:150 seed_arb (fun s ->
        let e1 = dyadic_evidence s and e2 = dyadic_evidence (s + 1) in
        let f1 = M.make dom8 (List.map (fun (set, w) -> (set, float_of_int w /. 64.0)) e1) in
        let f2 = M.make dom8 (List.map (fun (set, w) -> (set, float_of_int w /. 64.0)) e2) in
        let q1 = Mq.make dom8 (List.map (fun (set, w) -> (set, Qarith.Q.make w 64)) e1) in
        let q2 = Mq.make dom8 (List.map (fun (set, w) -> (set, Qarith.Q.make w 64)) e2) in
        match (M.combine_opt f1 f2, Mq.combine_opt q1 q2) with
        | None, None -> true
        | Some (fc, fk), Some (qc, qk) ->
            Float.abs (fk -. Qarith.Q.to_float qk) <= 1e-9
            && List.for_all
                 (fun (set, x) ->
                   Float.abs (x -. Qarith.Q.to_float (Mq.mass qc set)) <= 1e-9)
                 (M.focals fc)
        | Some _, None | None, Some _ -> false);
    prop "float and rational Bel/Pls agree" ~count:150 seed_arb (fun s ->
        let e = dyadic_evidence s in
        let f = M.make dom8 (List.map (fun (set, w) -> (set, float_of_int w /. 64.0)) e) in
        let q = Mq.make dom8 (List.map (fun (set, w) -> (set, Qarith.Q.make w 64)) e) in
        let set = gen_set (s + 5) in
        Float.abs (M.bel f set -. Qarith.Q.to_float (Mq.bel q set)) <= 1e-12
        && Float.abs (M.pls f set -. Qarith.Q.to_float (Mq.pls q set)) <= 1e-12) ]

(* --- serialization --------------------------------------------------- *)

let io_props =
  [ prop "erd round-trips generated relations" ~count:50 seed_arb (fun s ->
        let r = gen_relation s in
        rel_equal r (Erm.Io.relation_of_string (Erm.Io.to_string r)));
    prop "evidence notation round-trips on representable masses" seed_arb
      (fun s ->
        (* Dyadic masses (multiples of 1/64) print exactly under %g, so
           display output must reparse to an equal evidence set. *)
        let rng = R.create (s + 424243) in
        let sets =
          List.sort_uniq Vs.compare
            (List.init 3 (fun _ -> G.vset rng dom8 ~max_size:3))
        in
        let n = List.length sets in
        let weights = List.init n (fun i -> if i = n - 1 then 0 else 1 + R.int rng 8) in
        let used = List.fold_left ( + ) 0 weights in
        let weights =
          List.mapi (fun i w -> if i = n - 1 then 64 - used else w) weights
        in
        let e =
          M.make dom8
            (List.map2 (fun set w -> (set, float_of_int w /. 64.0)) sets weights)
        in
        M.equal e (Dst.Evidence.of_string dom8 (Dst.Evidence.to_string e))) ]

(* --- extension properties: refinement, rank, summaries, set algebra -- *)

let coarse4 = G.domain ~size:4 "coarse"
let fine12 = G.domain ~size:12 "fine"

let refining =
  Dst.Refinement.make ~coarse:coarse4 ~fine:fine12 (fun v ->
      match v with
      | Dst.Value.String name ->
          let k = int_of_string (String.sub name 1 (String.length name - 1)) in
          Vs.of_strings (List.init 3 (fun i -> "v" ^ string_of_int ((3 * k) + i)))
      | _ -> assert false)

let gen_coarse_evidence seed =
  G.evidence (R.create seed) ~focals:3 ~max_focal_size:2 coarse4

let extension_props =
  [ prop "refine preserves Bel on images" seed_arb (fun s ->
        let m = gen_coarse_evidence s in
        let set = G.vset (R.create (s + 3)) coarse4 ~max_size:3 in
        Float.abs
          (M.bel m set
          -. M.bel (Dst.Refinement.refine refining m)
               (Dst.Refinement.image refining set))
        <= 1e-9);
    prop "refine then coarsen is the identity" seed_arb (fun s ->
        let m = gen_coarse_evidence s in
        M.equal m (Dst.Refinement.coarsen refining (Dst.Refinement.refine refining m)));
    prop "coarsening never loses plausibility" seed_arb (fun s ->
        let fine_m = G.evidence (R.create s) ~focals:4 ~max_focal_size:4 fine12 in
        let set = G.vset (R.create (s + 5)) coarse4 ~max_size:2 in
        M.pls (Dst.Refinement.coarsen refining fine_m) set
        >= M.pls fine_m (Dst.Refinement.image refining set) -. 1e-9);
    prop "top k is a k-subset with maximal membership" seed_arb (fun s ->
        let r = gen_relation s in
        let k = 1 + (s mod 8) in
        let t = Erm.Rank.top k r in
        Erm.Relation.cardinal t = min k (Erm.Relation.cardinal r)
        && Erm.Relation.for_all (fun x -> Erm.Relation.mem r (Erm.Etuple.key x)) t
        &&
        (* every kept tuple dominates every dropped tuple *)
        let dropped = Erm.Ops.difference r t in
        Erm.Relation.for_all
          (fun kept ->
            Erm.Relation.for_all
              (fun drop ->
                Dst.Support.compare (Erm.Etuple.tm kept) (Erm.Etuple.tm drop)
                >= 0)
              dropped)
          t);
    prop "cardinality interval brackets the tuple count" seed_arb (fun s ->
        let r = gen_relation s in
        let sn, sp = Erm.Summarize.cardinality_interval r in
        let n = float_of_int (Erm.Relation.cardinal r) in
        0.0 <= sn && sn <= sp +. 1e-9 && sp <= n +. 1e-9);
    prop "count_where is bounded by the cardinality interval" seed_arb
      (fun s ->
        let r = gen_relation s in
        let csn, csp = Erm.Summarize.count_where (gen_predicate s) r in
        let rsn, rsp = Erm.Summarize.cardinality_interval r in
        ignore rsn;
        csn <= csp +. 1e-9 && csp <= rsp +. 1e-9);
    prop "difference and intersection partition the union" seed_arb (fun s ->
        let a, b = gen_pair s in
        Erm.Relation.cardinal (Erm.Ops.union a b)
        = Erm.Relation.cardinal (Erm.Ops.intersection a b)
          + Erm.Relation.cardinal (Erm.Ops.difference a b)
          + Erm.Relation.cardinal (Erm.Ops.difference b a));
    prop "intersection commutes" seed_arb (fun s ->
        let a, b = gen_pair s in
        rel_equal (Erm.Ops.intersection a b) (Erm.Ops.intersection b a));
    prop "incremental absorb equals extended union" seed_arb (fun s ->
        let a, b = gen_pair s in
        rel_equal (Erm.Ops.union a b)
          (Integration.Incremental.relation
             (Integration.Incremental.absorb
                (Integration.Incremental.of_relation a)
                b)));
    prop "focal approximation error is bounded by the dropped mass"
      ~count:150 seed_arb
      (fun s ->
        let m = G.evidence (R.create s) ~focals:6 ~max_focal_size:3 dom8 in
        let a = M.approximate ~max_focals:3 m in
        let omega = D.values dom8 in
        let dropped = M.mass a omega -. M.mass m omega in
        let set = gen_set (s + 23) in
        M.bel m set -. M.bel a set <= dropped +. 1e-9
        && M.pls a set -. M.pls m set <= dropped +. 1e-9
        && M.bel a set <= M.bel m set +. 1e-9
        && M.pls a set >= M.pls m set -. 1e-9);
    prop "discounted relations always union without conflict" ~count:50
      seed_arb
      (fun s ->
        (* Even artificially conflicting sources merge once discounted. *)
        let a = gen_relation ~size:8 s in
        let b =
          G.reobserve (R.create (s + 3)) a
        in
        let report =
          Integration.Reliability.merge_discounted ~alpha_left:0.9
            ~alpha_right:0.9 a b
        in
        report.Integration.Merge.conflicts = []
        && Erm.Relation.cardinal report.integrated = Erm.Relation.cardinal a) ]

(* --- §1.3 refinement relationships with the baselines ----------------- *)

(* Relations with fully certain membership isolate the attribute-level
   comparison (the baselines have no membership concept). *)
let gen_certain_relation seed =
  let rng = R.create (seed + 7177) in
  Erm.Relation.fold
    (fun t acc ->
      Erm.Relation.add acc (Erm.Etuple.with_tm Dst.Support.certain t))
    (G.relation rng ~size:10 schema)
    (Erm.Relation.empty schema)

let baseline_props =
  [ prop "DeMichiel's True set = the sn=1 answers" ~count:100 seed_arb
      (fun s ->
        let r = gen_certain_relation s in
        let set = G.vset (R.create (s + 11)) dom8 ~max_size:3 in
        let ds_true =
          Erm.Ops.select ~threshold:Erm.Threshold.certain_only
            (Erm.Predicate.is_ "e0" set) r
        in
        let pv = Baselines.Partial_value.relation_of_extended r in
        let true_t, _ = Baselines.Partial_value.select_is pv "e0" set in
        Erm.Relation.cardinal ds_true = List.length true_t
        && List.for_all
             (fun (t : Baselines.Partial_value.tuple) ->
               Erm.Relation.mem ds_true [ t.key ])
             true_t);
    prop "DeMichiel's True ∪ Maybe = the Pls>0 tuples (via F_SS)" ~count:100
      seed_arb
      (fun s ->
        (* Note CWA_ER: σ̂ itself can never *return* a pure may-be tuple
           (its revised sn would be 0), which is exactly why DeMichiel
           needs a second result set and the paper does not — the
           comparison must go through F_SS directly. *)
        let r = gen_certain_relation s in
        let schema' = Erm.Relation.schema r in
        let set = G.vset (R.create (s + 13)) dom8 ~max_size:3 in
        let possible =
          Erm.Relation.fold
            (fun t n ->
              let support =
                Erm.Predicate.eval schema' t (Erm.Predicate.Is ("e0", set))
              in
              if Dst.Support.sp support > 1e-12 then n + 1 else n)
            r 0
        in
        let pv = Baselines.Partial_value.relation_of_extended r in
        let true_t, maybe_t = Baselines.Partial_value.select_is pv "e0" set in
        possible = List.length true_t + List.length maybe_t);
    prop "σ̂'s answers sit between DeMichiel's True and True ∪ Maybe"
      ~count:100 seed_arb
      (fun s ->
        let r = gen_certain_relation s in
        let set = G.vset (R.create (s + 13)) dom8 ~max_size:3 in
        let answers =
          Erm.Ops.select (Erm.Predicate.is_ "e0" set) r
        in
        let pv = Baselines.Partial_value.relation_of_extended r in
        let true_t, maybe_t = Baselines.Partial_value.select_is pv "e0" set in
        List.length true_t <= Erm.Relation.cardinal answers
        && Erm.Relation.cardinal answers
           <= List.length true_t + List.length maybe_t
        && List.for_all
             (fun (t : Baselines.Partial_value.tuple) ->
               Erm.Relation.mem answers [ t.key ])
             true_t);
    prop "Tseng's probability lies in the belief interval" ~count:100
      seed_arb
      (fun s ->
        let r = gen_certain_relation s in
        let set = G.vset (R.create (s + 17)) dom8 ~max_size:3 in
        let ppv = Baselines.Prob_partial.relation_of_extended r in
        let schema' = Erm.Relation.schema r in
        List.for_all
          (fun (t : Baselines.Prob_partial.tuple) ->
            let e =
              Erm.Etuple.evidence schema'
                (Erm.Relation.find r [ t.key ])
                "e0"
            in
            let bel, pls = M.interval e set in
            let p = Baselines.Prob_partial.prob_in (List.assoc "e0" t.cells) set in
            bel -. 1e-9 <= p && p <= pls +. 1e-9)
          (List.filter (fun (t : Baselines.Prob_partial.tuple) ->
               Erm.Relation.mem r [ t.key ]) ppv));
    prop "Lee's select intervals = F_SS before membership" ~count:100
      seed_arb
      (fun s ->
        let r = gen_certain_relation s in
        let set = G.vset (R.create (s + 19)) dom8 ~max_size:3 in
        let lee = Baselines.Lee.of_extended r in
        let schema' = Erm.Relation.schema r in
        List.for_all
          (fun ((t : Baselines.Lee.tuple), (bel, pls)) ->
            let support =
              Erm.Predicate.eval schema'
                (Erm.Relation.find r [ t.key ])
                (Erm.Predicate.Is ("e0", set))
            in
            Float.abs (bel -. Dst.Support.sn support) <= 1e-9
            && Float.abs (pls -. Dst.Support.sp support) <= 1e-9)
          (Baselines.Lee.select lee "e0" set));
    prop "federated approximation stays CWA-sound" ~count:50 seed_arb
      (fun s ->
        (* Even without a threshold the two strategies may disagree on
           borderline keys (Bel can drop under combination), so the law
           is soundness, not key-set equality. *)
        let a, b = gen_pair s in
        let c = Integration.Federated.compare (gen_predicate s) a b in
        Erm.Relation.satisfies_cwa c.approximate
        && Erm.Relation.satisfies_cwa c.reference) ]

let () =
  Alcotest.run "properties"
    [ ("mass", mass_props);
      ("combination", combine_props);
      ("support", support_props);
      ("closure", closure_props);
      ("boundedness", boundedness_props);
      ("operator-laws", operator_props);
      ("optimizer", plan_props);
      ("serialization", io_props);
      ("numeric-differential", differential_props);
      ("extensions", extension_props);
      ("baseline-refinement", baseline_props) ]
