(* Storage-layer extensions: secondary indexes, the persistent catalog,
   and query EXPLAIN. *)

module V = Dst.Value
module S = Dst.Support

(* --- indexes ---------------------------------------------------------- *)

let colors = Dst.Domain.of_strings "color" [ "red"; "green"; "blue" ]

let schema =
  Erm.Schema.make ~name:"cars"
    ~key:[ Erm.Attr.definite "plate" "string" ]
    ~nonkey:
      [ Erm.Attr.definite "city" "string";
        Erm.Attr.evidential "color" colors ]

let car ?(tm = S.certain) plate city color =
  Erm.Etuple.make schema
    ~key:[ V.string plate ]
    ~cells:
      [ Erm.Etuple.Definite (V.string city);
        Erm.Etuple.Evidence (Dst.Evidence.of_string colors color) ]
    ~tm

let cars =
  Erm.Relation.of_tuples schema
    [ car "p1" "oslo" "[red^1]";
      car "p2" "bergen" "[green^1]";
      car ~tm:(S.make ~sn:0.4 ~sp:0.9) "p3" "oslo" "[blue^0.5; ~^0.5]";
      car "p4" "tromso" "[red^0.5; green^0.5]" ]

let test_index_build_lookup () =
  let idx = Erm.Index.build cars "city" in
  Alcotest.(check string) "attr" "city" (Erm.Index.attr idx);
  Alcotest.(check int) "three distinct cities" 3
    (Erm.Index.distinct_values idx);
  Alcotest.(check int) "two in oslo" 2
    (List.length (Erm.Index.lookup idx (V.string "oslo")));
  Alcotest.(check int) "none in paris" 0
    (List.length (Erm.Index.lookup idx (V.string "paris")))

let test_index_on_key_attr () =
  let idx = Erm.Index.build cars "plate" in
  Alcotest.(check int) "keys are unique" 4 (Erm.Index.distinct_values idx);
  Alcotest.(check int) "exact hit" 1
    (List.length (Erm.Index.lookup idx (V.string "p3")))

let test_index_rejects_evidential () =
  Alcotest.check_raises "color is evidential"
    (Erm.Index.Not_definite "color") (fun () ->
      ignore (Erm.Index.build cars "color"))

let test_index_select_matches_scan () =
  let idx = Erm.Index.build cars "city" in
  List.iter
    (fun city ->
      let via_index = Erm.Index.select_eq idx cars (V.string city) in
      let via_scan =
        Erm.Ops.select
          (Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field "city")
             (Erm.Predicate.Const (Erm.Etuple.Definite (V.string city))))
          cars
      in
      Alcotest.(check bool)
        (city ^ ": index = scan")
        true
        (Erm.Relation.equal via_index via_scan))
    [ "oslo"; "bergen"; "tromso"; "paris" ]

let test_index_usable_for () =
  let idx = Erm.Index.build cars "city" in
  let eq_pred =
    Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field "city")
      (Erm.Predicate.Const (Erm.Etuple.Definite (V.string "oslo")))
  in
  Alcotest.(check bool) "field = const" true
    (Erm.Index.usable_for idx eq_pred = Some (V.string "oslo"));
  let flipped =
    Erm.Predicate.theta Erm.Predicate.Eq
      (Erm.Predicate.Const (Erm.Etuple.Definite (V.string "oslo")))
      (Erm.Predicate.Field "city")
  in
  Alcotest.(check bool) "const = field" true
    (Erm.Index.usable_for idx flipped = Some (V.string "oslo"));
  let is_single = Erm.Predicate.is_values "city" [ "oslo" ] in
  Alcotest.(check bool) "singleton IS" true
    (Erm.Index.usable_for idx is_single = Some (V.string "oslo"));
  let is_pair = Erm.Predicate.is_values "city" [ "oslo"; "bergen" ] in
  Alcotest.(check bool) "non-singleton IS unusable" true
    (Erm.Index.usable_for idx is_pair = None);
  let other = Erm.Predicate.is_values "plate" [ "p1" ] in
  Alcotest.(check bool) "different attribute unusable" true
    (Erm.Index.usable_for idx other = None)

(* --- catalog ---------------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "eridb_cat_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_catalog_roundtrip () =
  with_temp_dir (fun dir ->
      let c =
        Store.Catalog.create dir
        |> fun c ->
        Store.Catalog.put c "ra" Paperdata.r_a |> fun c ->
        Store.Catalog.put c "rb" Paperdata.r_b
      in
      Store.Catalog.commit c;
      let c' = Store.Catalog.load dir in
      Alcotest.(check (list string)) "names" [ "ra"; "rb" ]
        (Store.Catalog.names c');
      Alcotest.(check bool) "ra round-trips" true
        (Erm.Relation.equal (Store.Catalog.get c' "ra") Paperdata.r_a);
      Alcotest.(check bool) "rb round-trips" true
        (Erm.Relation.equal (Store.Catalog.get c' "rb") Paperdata.r_b);
      (* The catalog doubles as a query environment. *)
      let result =
        Query.Eval.run (Store.Catalog.env c') "ra UNION rb"
      in
      Alcotest.(check bool) "env queries work" true
        (Erm.Relation.equal result Paperdata.table4))

let test_catalog_put_replaces_and_renames () =
  let c = Store.Catalog.create "/tmp/unused" in
  let c = Store.Catalog.put c "x" Paperdata.r_a in
  let c = Store.Catalog.put c "x" Paperdata.r_b in
  Alcotest.(check int) "replace keeps one entry" 1
    (List.length (Store.Catalog.names c));
  Alcotest.(check string) "stored under the catalog name" "x"
    (Erm.Schema.name (Erm.Relation.schema (Store.Catalog.get c "x")));
  Alcotest.(check bool) "latest wins" true
    (Erm.Relation.equal (Store.Catalog.get c "x") Paperdata.r_b)

let test_catalog_drop_gc () =
  with_temp_dir (fun dir ->
      let c = Store.Catalog.create dir in
      let c = Store.Catalog.put c "keep" Paperdata.r_a in
      let c = Store.Catalog.put c "gone" Paperdata.r_b in
      Store.Catalog.commit c;
      Alcotest.(check bool) "gone.erd exists" true
        (Sys.file_exists (Filename.concat dir "gone.erd"));
      Store.Catalog.commit (Store.Catalog.drop c "gone");
      Alcotest.(check bool) "gone.erd deleted on commit" false
        (Sys.file_exists (Filename.concat dir "gone.erd"));
      let c' = Store.Catalog.load dir in
      Alcotest.(check (list string)) "only keep remains" [ "keep" ]
        (Store.Catalog.names c'))

let test_catalog_errors () =
  let fails f =
    Alcotest.(check bool)
      "raises Catalog_error" true
      (match f () with
      | _ -> false
      | exception Store.Catalog.Catalog_error _ -> true)
  in
  fails (fun () -> Store.Catalog.load "/nonexistent/nowhere");
  fails (fun () ->
      Store.Catalog.put (Store.Catalog.create "/tmp/x") "a/b" Paperdata.r_a);
  fails (fun () ->
      Store.Catalog.put (Store.Catalog.create "/tmp/x") "" Paperdata.r_a)

let test_catalog_commit_is_idempotent () =
  with_temp_dir (fun dir ->
      let c = Store.Catalog.put (Store.Catalog.create dir) "ra" Paperdata.r_a in
      Store.Catalog.commit c;
      Store.Catalog.commit c;
      Alcotest.(check bool) "still loads" true
        (Erm.Relation.equal
           (Store.Catalog.get (Store.Catalog.load dir) "ra")
           Paperdata.r_a))

let test_catalog_random_roundtrip () =
  (* Workload-generated relations (random evidence, memberships, sizes)
     survive the disk format. *)
  let qtest =
    QCheck.Test.make ~name:"catalog random roundtrip" ~count:15
      (QCheck.int_range 0 100000) (fun seed ->
        with_temp_dir (fun dir ->
            let r =
              Workload.Gen.relation (Workload.Rng.create seed) ~size:25
                (Workload.Gen.schema "rand")
            in
            let c = Store.Catalog.put (Store.Catalog.create dir) "r" r in
            Store.Catalog.commit c;
            Erm.Relation.equal
              (Store.Catalog.get (Store.Catalog.load dir) "r")
              r))
  in
  match QCheck.Test.check_exn qtest with
  | () -> ()
  | exception QCheck.Test.Test_fail _ -> Alcotest.fail "roundtrip failed"

(* --- explain ---------------------------------------------------------- *)

let env = [ ("ra", Paperdata.r_a); ("rb", Paperdata.r_b) ]

let test_explain_shapes () =
  let node =
    Query.Explain.explain env
      (Query.Parser.parse
         "SELECT rname FROM (ra UNION rb) WHERE rating IS {ex} WITH SN > 0.5")
  in
  Alcotest.(check string) "root is a select" "select" node.Query.Explain.op;
  Alcotest.(check (float 0.0)) "select can keep nothing" 0.0
    node.Query.Explain.rows_min;
  (match node.Query.Explain.children with
  | [ union ] ->
      Alcotest.(check string) "child is the union" "union"
        union.Query.Explain.op;
      Alcotest.(check (float 0.0)) "union max adds" 11.0
        union.Query.Explain.rows_max;
      Alcotest.(check (float 0.0)) "union min is the larger side" 6.0
        union.Query.Explain.rows_min
  | _ -> Alcotest.fail "expected one child");
  let scan = Query.Explain.explain env (Query.Parser.parse "ra") in
  Alcotest.(check (float 0.0)) "scan bounds are the count" 6.0
    scan.Query.Explain.rows_max

let test_explain_product_and_limit () =
  let rb2 = Erm.Ops.rename_attrs (fun n -> "r_" ^ n) Paperdata.r_b in
  let env = ("rb2", rb2) :: env in
  let product = Query.Explain.explain env (Query.Parser.parse "ra TIMES rb2") in
  Alcotest.(check (float 0.0)) "product multiplies" 30.0
    product.Query.Explain.rows_max;
  let limited =
    Query.Explain.explain env
      (Query.Parser.parse "ra ORDER BY SN DESC LIMIT 3")
  in
  Alcotest.(check (float 0.0)) "limit caps" 3.0
    limited.Query.Explain.rows_max

let test_explain_optimized_shows_rewrites () =
  let rb2 = Erm.Ops.rename_attrs (fun n -> "r_" ^ n) Paperdata.r_b in
  let env = ("rb2", rb2) :: env in
  let q =
    Query.Parser.parse "SELECT * FROM (ra TIMES rb2) WHERE rname = r_rname"
  in
  let node = Query.Explain.explain_optimized env q in
  Alcotest.(check string) "product fused into a join" "join"
    node.Query.Explain.op

let test_explain_new_operators () =
  let rb2 = Erm.Ops.rename_attrs (fun n -> "r_" ^ n) Paperdata.r_b in
  let env = ("rb2", rb2) :: env in
  let node q = Query.Explain.explain env (Query.Parser.parse q) in
  let intersect = node "ra INTERSECT rb" in
  Alcotest.(check string) "intersect op" "intersect"
    intersect.Query.Explain.op;
  Alcotest.(check (float 0.0)) "intersect capped by the smaller side" 5.0
    intersect.Query.Explain.rows_max;
  let except = node "ra EXCEPT rb" in
  Alcotest.(check string) "except op" "except" except.Query.Explain.op;
  Alcotest.(check (float 0.0)) "except bounded by the left side" 6.0
    except.Query.Explain.rows_max;
  Alcotest.(check (float 0.0)) "except lower bound" 1.0
    except.Query.Explain.rows_min;
  let prefixed = node "ra PREFIX p_" in
  Alcotest.(check string) "prefix op" "prefix" prefixed.Query.Explain.op;
  Alcotest.(check (float 0.0)) "prefix preserves bounds" 6.0
    prefixed.Query.Explain.rows_max

let test_explain_unknown_relation () =
  Alcotest.(check bool)
    "unknown relation" true
    (match Query.Explain.explain env (Query.Parser.parse "nosuch") with
    | _ -> false
    | exception Query.Eval.Eval_error _ -> true)

let test_explain_rendering () =
  let node = Query.Explain.explain env (Query.Parser.parse "ra UNION rb") in
  let text = Query.Explain.to_string node in
  Alcotest.(check bool) "mentions both scans" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     contains text "scan [ra]" && contains text "scan [rb]"
     && contains text "union")

let () =
  Random.self_init ();
  Alcotest.run "storage"
    [ ( "index",
        [ Alcotest.test_case "build and lookup" `Quick test_index_build_lookup;
          Alcotest.test_case "key attribute" `Quick test_index_on_key_attr;
          Alcotest.test_case "evidential rejected" `Quick
            test_index_rejects_evidential;
          Alcotest.test_case "select_eq = scan select" `Quick
            test_index_select_matches_scan;
          Alcotest.test_case "usable_for" `Quick test_index_usable_for ] );
      ( "catalog",
        [ Alcotest.test_case "roundtrip" `Quick test_catalog_roundtrip;
          Alcotest.test_case "put replaces and renames" `Quick
            test_catalog_put_replaces_and_renames;
          Alcotest.test_case "drop garbage-collects" `Quick
            test_catalog_drop_gc;
          Alcotest.test_case "errors" `Quick test_catalog_errors;
          Alcotest.test_case "idempotent commit" `Quick
            test_catalog_commit_is_idempotent;
          Alcotest.test_case "random roundtrip (qcheck)" `Quick
            test_catalog_random_roundtrip ] );
      ( "explain",
        [ Alcotest.test_case "shapes and bounds" `Quick test_explain_shapes;
          Alcotest.test_case "product and limit" `Quick
            test_explain_product_and_limit;
          Alcotest.test_case "optimized plan" `Quick
            test_explain_optimized_shows_rewrites;
          Alcotest.test_case "new operators" `Quick
            test_explain_new_operators;
          Alcotest.test_case "unknown relation" `Quick
            test_explain_unknown_relation;
          Alcotest.test_case "rendering" `Quick test_explain_rendering ] ) ]
