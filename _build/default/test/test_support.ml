(* Support pairs (sn, sp): construction, the F_TM product, the Ψ-frame
   Dempster combination used by extended union, the extension connectives,
   and the correspondence with boolean-frame mass functions. *)

module S = Dst.Support
module M = Dst.Mass.F

let feq = Alcotest.float 1e-9
let sup = Alcotest.testable S.pp S.equal

let s sn sp = S.make ~sn ~sp

let test_make_validation () =
  let bad sn sp =
    Alcotest.(check bool)
      (Printf.sprintf "(%g,%g) rejected" sn sp)
      true
      (match S.make ~sn ~sp with
      | _ -> false
      | exception S.Invalid_support _ -> true)
  in
  bad (-0.1) 0.5;
  bad 0.5 1.1;
  bad 0.8 0.4;
  (* Values within the float tolerance are clamped, not rejected. *)
  let clamped = S.make ~sn:(1.0 +. 1e-12) ~sp:(1.0 +. 1e-12) in
  Alcotest.check feq "clamped sn" 1.0 (S.sn clamped)

let test_constants () =
  Alcotest.check sup "of_bool true" S.certain (S.of_bool true);
  Alcotest.check sup "of_bool false" S.impossible (S.of_bool false);
  Alcotest.check feq "unknown ignorance" 1.0 (S.ignorance S.unknown);
  Alcotest.(check bool) "certain is positive" true (S.positive S.certain);
  Alcotest.(check bool) "impossible is not" false (S.positive S.impossible);
  Alcotest.(check bool) "unknown has sn = 0" false (S.positive S.unknown);
  Alcotest.(check bool) "is_certain" true (S.is_certain S.certain)

let test_f_tm () =
  (* §3.1.2: independent events multiply componentwise. *)
  Alcotest.check sup "product" (s 0.32 0.32) (S.f_tm (s 0.5 0.5) (s 0.64 0.64));
  Alcotest.check sup "certain is the unit" (s 0.3 0.7)
    (S.f_tm S.certain (s 0.3 0.7));
  Alcotest.check sup "impossible annihilates" S.impossible
    (S.f_tm S.impossible (s 0.9 1.0));
  Alcotest.check sup "conjunction is the same function"
    (S.f_tm (s 0.5 0.8) (s 0.25 0.5))
    (S.conjunction (s 0.5 0.8) (s 0.25 0.5))

let test_combine_table4_mehl () =
  (* (0.5, 0.5) ⊕ (0.8, 1) = (5/6, 5/6): the Table 4 mehl membership. *)
  let c = S.combine (s 0.5 0.5) (s 0.8 1.0) in
  Alcotest.check feq "sn" (5.0 /. 6.0) (S.sn c);
  Alcotest.check feq "sp" (5.0 /. 6.0) (S.sp c)

let test_combine_identities () =
  let x = s 0.3 0.8 in
  Alcotest.check sup "unknown is the unit" x (S.combine S.unknown x);
  Alcotest.check sup "commutes" (S.combine x (s 0.5 0.9))
    (S.combine (s 0.5 0.9) x);
  Alcotest.check sup "certain absorbs" S.certain (S.combine S.certain x);
  Alcotest.check_raises "certain vs impossible is total conflict"
    M.Total_conflict (fun () -> ignore (S.combine S.certain S.impossible))

let test_combine_matches_mass_frame () =
  (* The closed form must agree with literal Dempster combination on the
     boolean frame, across a grid of support pairs. *)
  let grid = [ s 0.0 1.0; s 0.2 0.6; s 0.5 0.5; s 0.3 1.0; s 0.9 0.95 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let direct = S.combine a b in
          let via_mass =
            S.of_mass (M.combine (S.to_mass a) (S.to_mass b))
          in
          Alcotest.check sup
            (Format.asprintf "closed form = mass combination for %a ⊕ %a"
               S.pp a S.pp b)
            via_mass direct)
        grid)
    grid

let test_conflict () =
  Alcotest.check feq "kappa of mehl pair" 0.4 (S.conflict (s 0.5 0.5) (s 0.8 1.0));
  Alcotest.check feq "no conflict with unknown" 0.0
    (S.conflict S.unknown (s 0.7 0.9));
  Alcotest.check feq "total conflict" 1.0 (S.conflict S.certain S.impossible)

let test_negation () =
  Alcotest.check sup "negation swaps and complements" (s 0.2 0.7)
    (S.negation (s 0.3 0.8));
  Alcotest.check sup "involutive" (s 0.3 0.8) (S.negation (S.negation (s 0.3 0.8)));
  Alcotest.check sup "negation of certain" S.impossible (S.negation S.certain);
  Alcotest.check sup "negation of unknown" S.unknown (S.negation S.unknown)

let test_disjunction () =
  Alcotest.check sup "independent or" (s 0.64 0.94)
    (S.disjunction (s 0.4 0.7) (s 0.4 0.8));
  Alcotest.check sup "false is the unit" (s 0.4 0.7)
    (S.disjunction S.impossible (s 0.4 0.7));
  Alcotest.check sup "true absorbs" S.certain
    (S.disjunction S.certain (s 0.4 0.7))

let test_mass_roundtrip () =
  let cases = [ S.certain; S.impossible; S.unknown; s 0.25 0.75; s 0.5 0.5 ] in
  List.iter
    (fun x ->
      Alcotest.check sup
        (Format.asprintf "roundtrip %a" S.pp x)
        x
        (S.of_mass (S.to_mass x)))
    cases;
  let wrong_frame = M.vacuous (Dst.Domain.of_strings "d" [ "a"; "b" ]) in
  Alcotest.(check bool)
    "of_mass rejects non-boolean frames" true
    (match S.of_mass wrong_frame with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_ordering () =
  Alcotest.(check bool) "sn dominates" true (S.compare (s 0.2 1.0) (s 0.3 0.4) < 0);
  Alcotest.(check bool) "sp breaks ties" true (S.compare (s 0.3 0.5) (s 0.3 0.9) < 0);
  Alcotest.(check int) "equal pairs" 0 (S.compare (s 0.3 0.5) (s 0.3 0.5))

let test_of_string () =
  Alcotest.check sup "plain floats" (s 0.5 0.75) (S.of_string "(0.5, 0.75)");
  Alcotest.check sup "fractions" (s (5.0 /. 6.0) (5.0 /. 6.0))
    (S.of_string "(5/6, 5/6)");
  Alcotest.check sup "integers" S.certain (S.of_string "(1, 1)");
  List.iter
    (fun input ->
      Alcotest.(check bool)
        ("rejects " ^ input)
        true
        (match S.of_string input with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ "0.5, 0.75"; "(0.5)"; "(a, b)"; "(0.5, 0.75, 1)"; "(1/0, 1)" ]

let () =
  Alcotest.run "support"
    [ ( "basics",
        [ Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "of_string" `Quick test_of_string ] );
      ( "algebra",
        [ Alcotest.test_case "F_TM product" `Quick test_f_tm;
          Alcotest.test_case "union combination (Table 4 mehl)" `Quick
            test_combine_table4_mehl;
          Alcotest.test_case "combination identities" `Quick
            test_combine_identities;
          Alcotest.test_case "closed form = boolean-frame Dempster" `Quick
            test_combine_matches_mass_frame;
          Alcotest.test_case "conflict" `Quick test_conflict;
          Alcotest.test_case "negation" `Quick test_negation;
          Alcotest.test_case "disjunction" `Quick test_disjunction;
          Alcotest.test_case "mass roundtrip" `Quick test_mass_roundtrip ] ) ]
