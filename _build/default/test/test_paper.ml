(* End-to-end reproduction of every numeric artifact in the paper:
   §2.1 (mass/Bel/Pls), §2.2 (Dempster combination, exact), Tables 2-5. *)

let feq = Alcotest.float 1e-9
let approx = Alcotest.float 5e-4
(* 5e-4: the paper prints three decimals. *)

let check_relations_equal what expected actual =
  Alcotest.(check bool)
    (what ^ ": expected and computed relations are equal")
    true
    (Erm.Relation.equal expected actual)

let pp_diff expected actual =
  Format.asprintf "expected:@.%s@.got:@.%s"
    (Erm.Render.to_string expected)
    (Erm.Render.to_string actual)

let check_table what expected actual =
  if not (Erm.Relation.equal expected actual) then
    Alcotest.failf "%s mismatch.@.%s" what (pp_diff expected actual)

(* --- §2.1: the wok mass function ---------------------------------- *)

let test_sec21_bel_pls () =
  let m = Paperdata.wok_m1 in
  let set = Dst.Vset.of_strings [ "ca"; "hu"; "si" ] in
  Alcotest.check feq "Bel({ca,hu,si}) = 5/6" (5.0 /. 6.0)
    (Dst.Mass.F.bel m set);
  Alcotest.check feq "Pls({ca,hu,si}) = 1" 1.0 (Dst.Mass.F.pls m set);
  Alcotest.check feq "m({ca}) = 1/2" 0.5
    (Dst.Mass.F.mass m (Dst.Vset.of_strings [ "ca" ]));
  Alcotest.check feq "m({ca,hu}) = 0 (mass is not monotone in set size)" 0.0
    (Dst.Mass.F.mass m (Dst.Vset.of_strings [ "ca"; "hu" ]))

(* --- §2.2: Dempster's rule, float and exact ----------------------- *)

let test_sec22_float () =
  let combined = Dst.Mass.F.combine Paperdata.wok_m1 Paperdata.wok_m2 in
  Alcotest.(check bool)
    "m1 ⊕ m2 matches the paper's fractions" true
    (Dst.Mass.F.equal combined Paperdata.wok_combined);
  Alcotest.check feq "κ = 1/8" Paperdata.wok_conflict
    (Dst.Mass.F.conflict Paperdata.wok_m1 Paperdata.wok_m2)

module Mq = Dst.Mass.Make (Dst.Num.Rational)

let test_sec22_exact () =
  let frame = Dst.Mass.F.frame Paperdata.wok_m1 in
  let m1 = Mq.make frame Paperdata.sec22_m1_exact in
  let m2 = Mq.make frame Paperdata.sec22_m2_exact in
  let expected = Mq.make frame Paperdata.sec22_expected_exact in
  let combined = Mq.combine m1 m2 in
  Alcotest.(check bool)
    "exact rational combination equals the paper's fractions exactly" true
    (Mq.equal combined expected);
  Alcotest.(check bool)
    "exact κ = 1/8" true
    (Qarith.Q.equal (Mq.conflict m1 m2) (Qarith.Q.make 1 8))

let test_sec22_commutes () =
  let a = Dst.Mass.F.combine Paperdata.wok_m1 Paperdata.wok_m2 in
  let b = Dst.Mass.F.combine Paperdata.wok_m2 Paperdata.wok_m1 in
  Alcotest.(check bool) "⊕ commutes on the worked example" true
    (Dst.Mass.F.equal a b)

(* --- Table 2: σ̂[sn>0; speciality is {si}] R_A --------------------- *)

let table2_actual () =
  Erm.Ops.select
    ~threshold:(Erm.Threshold.sn_gt 0.0)
    (Erm.Predicate.is_values "speciality" [ "si" ])
    Paperdata.r_a

let test_table2 () = check_table "Table 2" Paperdata.table2 (table2_actual ())

let test_table2_garden_membership () =
  let r = table2_actual () in
  let t = Erm.Relation.find r [ Dst.Value.string "garden" ] in
  Alcotest.check feq "garden sn = Bel({si}) = 0.5" 0.5
    (Dst.Support.sn (Erm.Etuple.tm t));
  Alcotest.check feq "garden sp = Pls({si}) = 0.75" 0.75
    (Dst.Support.sp (Erm.Etuple.tm t))

(* --- Table 3: compound predicate ----------------------------------- *)

let table3_actual () =
  let open Erm.Predicate in
  Erm.Ops.select
    ~threshold:(Erm.Threshold.sn_gt 0.0)
    (is_values "speciality" [ "mu" ] &&& is_values "rating" [ "ex" ])
    Paperdata.r_a

let test_table3 () = check_table "Table 3" Paperdata.table3 (table3_actual ())

let test_table3_mehl_membership () =
  let r = table3_actual () in
  let t = Erm.Relation.find r [ Dst.Value.string "mehl" ] in
  Alcotest.check feq "mehl (sn,sp) = (0.32, 0.32): 0.8·0.8·0.5" 0.32
    (Dst.Support.sn (Erm.Etuple.tm t));
  Alcotest.check feq "mehl sp" 0.32 (Dst.Support.sp (Erm.Etuple.tm t))

(* --- Table 4: extended union --------------------------------------- *)

let table4_actual () = Erm.Ops.union Paperdata.r_a Paperdata.r_b

let test_table4 () = check_table "Table 4" Paperdata.table4 (table4_actual ())

let test_table4_paper_roundings () =
  (* Check the printed 3-decimal values of the paper directly. *)
  let r = table4_actual () in
  let ev name attr =
    Erm.Etuple.evidence Paperdata.schema
      (Erm.Relation.find r [ Dst.Value.string name ])
      attr
  in
  let mass e s = Dst.Mass.F.mass e (Dst.Vset.of_strings s) in
  let garden_spec = ev "garden" "speciality" in
  Alcotest.check approx "garden si = 0.655" 0.655 (mass garden_spec [ "si" ]);
  Alcotest.check approx "garden hu = 0.276" 0.276 (mass garden_spec [ "hu" ]);
  Alcotest.check approx "garden ~ = 0.069" 0.069
    (Dst.Mass.F.mass garden_spec (Dst.Domain.values Paperdata.speciality));
  let garden_rating = ev "garden" "rating" in
  Alcotest.check approx "garden ex = 0.143" 0.143 (mass garden_rating [ "ex" ]);
  Alcotest.check approx "garden gd = 0.857" 0.857 (mass garden_rating [ "gd" ]);
  let mehl_dish = ev "mehl" "best-dish" in
  Alcotest.check approx "mehl d24 = 0.069" 0.069 (mass mehl_dish [ "d24" ]);
  Alcotest.check approx "mehl d31 = 0.931" 0.931 (mass mehl_dish [ "d31" ]);
  let mehl = Erm.Relation.find r [ Dst.Value.string "mehl" ] in
  Alcotest.check (Alcotest.float 5e-3) "mehl sn = 0.83" 0.83
    (Dst.Support.sn (Erm.Etuple.tm mehl));
  Alcotest.check (Alcotest.float 5e-3) "mehl sp = 0.83" 0.83
    (Dst.Support.sp (Erm.Etuple.tm mehl))

let test_table4_commutes () =
  check_relations_equal "union commutes on the paper data"
    (Erm.Ops.union Paperdata.r_a Paperdata.r_b)
    (Erm.Ops.union Paperdata.r_b Paperdata.r_a)

(* --- Table 5: projection ------------------------------------------- *)

let table5_actual () = Erm.Ops.project Paperdata.table5_attrs Paperdata.r_a

let test_table5 () = check_table "Table 5" Paperdata.table5 (table5_actual ())

(* --- Figure 2: entity and relationship relations integrate uniformly - *)

let test_figure2_manager_union () =
  let merged = Erm.Ops.union Paperdata.m_a Paperdata.m_b in
  Alcotest.(check int) "chen merged, anand passes through" 2
    (Erm.Relation.cardinal merged);
  let chen =
    Erm.Etuple.evidence Paperdata.m_schema
      (Erm.Relation.find merged [ Dst.Value.string "chen" ])
      "position"
  in
  Alcotest.(check bool)
    "chen's position = [head-chef^5/6; manager^1/6]" true
    (Dst.Mass.F.equal chen Paperdata.chen_position_expected)

let test_figure2_relationship_union () =
  (* RM carries uncertainty only in tuple membership; union combines the
     membership evidence on the boolean frame. *)
  let merged = Erm.Ops.union Paperdata.rm_a Paperdata.rm_b in
  Alcotest.(check int) "three manages facts" 3 (Erm.Relation.cardinal merged);
  let tm_of rname manager =
    Erm.Etuple.tm
      (Erm.Relation.find merged
         [ Dst.Value.string rname; Dst.Value.string manager ])
  in
  (* (1,1) ⊕ (0.9,1) = (1,1). *)
  Alcotest.check feq "garden-chen reinforced to certainty" 1.0
    (Dst.Support.sn (tm_of "garden" "chen"));
  Alcotest.check feq "mehl-anand pass-through sn" 0.7
    (Dst.Support.sn (tm_of "mehl" "anand"));
  Alcotest.check feq "wok-chen pass-through sp" 0.9
    (Dst.Support.sp (tm_of "wok" "chen"))

let test_figure2_join_query () =
  let env =
    [ ("rm", Erm.Ops.union Paperdata.rm_a Paperdata.rm_b);
      ("m", Erm.Ops.union Paperdata.m_a Paperdata.m_b) ]
  in
  let result =
    Query.Eval.run env
      "SELECT * FROM (rm JOIN m ON manager = mname) WHERE position IS \
       {head-chef} WITH SN > 0.5"
  in
  (* garden-chen: (1,1)·(5/6,5/6); wok-chen: (0.8,0.9)·(5/6,5/6) = (2/3,
     0.75); mehl-anand: Bel(head-chef) = 0, dropped. *)
  Alcotest.(check int) "two restaurants run by a likely head-chef" 2
    (Erm.Relation.cardinal result);
  let garden =
    Erm.Relation.find result
      [ Dst.Value.string "garden"; Dst.Value.string "chen";
        Dst.Value.string "chen" ]
  in
  Alcotest.check feq "garden support" (5.0 /. 6.0)
    (Dst.Support.sn (Erm.Etuple.tm garden))

let () =
  Alcotest.run "paper"
    [ ( "sec2",
        [ Alcotest.test_case "2.1 Bel/Pls" `Quick test_sec21_bel_pls;
          Alcotest.test_case "2.2 combination (float)" `Quick test_sec22_float;
          Alcotest.test_case "2.2 combination (exact rationals)" `Quick
            test_sec22_exact;
          Alcotest.test_case "2.2 commutativity" `Quick test_sec22_commutes ] );
      ( "tables",
        [ Alcotest.test_case "table 2" `Quick test_table2;
          Alcotest.test_case "table 2 garden membership" `Quick
            test_table2_garden_membership;
          Alcotest.test_case "table 3" `Quick test_table3;
          Alcotest.test_case "table 3 mehl membership" `Quick
            test_table3_mehl_membership;
          Alcotest.test_case "table 4" `Quick test_table4;
          Alcotest.test_case "table 4 paper roundings" `Quick
            test_table4_paper_roundings;
          Alcotest.test_case "table 4 commutativity" `Quick
            test_table4_commutes;
          Alcotest.test_case "table 5" `Quick test_table5 ] );
      ( "figure2",
        [ Alcotest.test_case "manager union" `Quick
            test_figure2_manager_union;
          Alcotest.test_case "relationship union" `Quick
            test_figure2_relationship_union;
          Alcotest.test_case "join query" `Quick test_figure2_join_query ] ) ]
