(* The .erd serialization format: parsing, error reporting with line
   numbers, round-tripping (including the paper's relations), and file
   load/save. *)

module V = Dst.Value

let sample =
  {|# a comment
relation pets
key name : string
attr age : int
attr kind : evidence {cat, dog, fox}

tuple rex   | 3 | [dog^1]                  | (1, 1)
tuple misty | 9 | [cat^0.8; {cat,fox}^0.2] | (0.5, 0.75)
|}

let test_parse_basics () =
  let r = Erm.Io.relation_of_string sample in
  Alcotest.(check int) "two tuples" 2 (Erm.Relation.cardinal r);
  let schema = Erm.Relation.schema r in
  Alcotest.(check string) "name" "pets" (Erm.Schema.name schema);
  let misty = Erm.Relation.find r [ V.string "misty" ] in
  Alcotest.(check int) "age parsed as int" 9
    (match Erm.Etuple.definite_value schema misty "age" with
    | V.Int n -> n
    | _ -> -1);
  Alcotest.(check (float 1e-9)) "membership" 0.5
    (Dst.Support.sn (Erm.Etuple.tm misty));
  Alcotest.(check (float 1e-9)) "evidence cell" 0.2
    (Dst.Mass.F.mass
       (Erm.Etuple.evidence schema misty "kind")
       (Dst.Vset.of_strings [ "cat"; "fox" ]))

let test_multiple_relations () =
  let rs = Erm.Io.relations_of_string (sample ^ "\n" ^ sample) in
  Alcotest.(check int) "two blocks" 2 (List.length rs);
  Alcotest.(check bool)
    "relation_of_string rejects two blocks" true
    (match Erm.Io.relation_of_string (sample ^ "\n" ^ sample) with
    | _ -> false
    | exception Erm.Io.Io_error _ -> true)

let expect_error_at expected_line input =
  match Erm.Io.relations_of_string input with
  | _ -> Alcotest.failf "should reject: %s" input
  | exception Erm.Io.Io_error { line; _ } ->
      Alcotest.(check int) "error line number" expected_line line

let test_error_lines () =
  expect_error_at 1 "tuple a | b\n";
  (* directive before relation *)
  expect_error_at 2 "relation r\nbogus directive\n";
  expect_error_at 3 "relation r\nkey k : string\nattr a : uuid\n";
  expect_error_at 4
    "relation r\nkey k : string\nattr a : int\ntuple x | notanint | (1,1)\n";
  expect_error_at 4
    "relation r\nkey k : string\nattr a : int\ntuple x | 1 | (2, 1)\n";
  expect_error_at 4 "relation r\nkey k : string\nattr a : int\ntuple x | 1\n";
  expect_error_at 5
    "relation r\nkey k : string\nattr a : int\ntuple x | 1 | (1,1)\ntuple x \
     | 2 | (1,1)\n"

let test_cwa_on_load () =
  expect_error_at 4
    "relation r\nkey k : string\nattr a : int\ntuple x | 1 | (0, 0.5)\n"

let test_roundtrip_sample () =
  let r = Erm.Io.relation_of_string sample in
  let r' = Erm.Io.relation_of_string (Erm.Io.to_string r) in
  Alcotest.(check bool) "roundtrip" true (Erm.Relation.equal r r')

let test_roundtrip_paper_tables () =
  List.iter
    (fun (name, r) ->
      let r' = Erm.Io.relation_of_string (Erm.Io.to_string r) in
      Alcotest.(check bool) (name ^ " roundtrips") true
        (Erm.Relation.equal r r'))
    [ ("r_a", Paperdata.r_a); ("r_b", Paperdata.r_b);
      ("table4", Paperdata.table4); ("table5", Paperdata.table5) ]

let test_load_save () =
  let path = Filename.temp_file "eridb" ".erd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Erm.Io.save path [ Paperdata.r_a; Paperdata.r_b ];
      match Erm.Io.load path with
      | [ a; b ] ->
          Alcotest.(check bool) "r_a loads back" true
            (Erm.Relation.equal a Paperdata.r_a);
          Alcotest.(check bool) "r_b loads back" true
            (Erm.Relation.equal b Paperdata.r_b)
      | other -> Alcotest.failf "expected 2 relations, got %d" (List.length other))

let test_value_kinds_roundtrip () =
  let input =
    {|relation kinds
key id : int
attr label : string
attr score : float
attr flag : bool
tuple 1 | "hello world" | 2.5  | true  | (1, 1)
tuple 2 | plain         | -0.5 | false | (0.3, 0.9)
|}
  in
  let r = Erm.Io.relation_of_string input in
  let r' = Erm.Io.relation_of_string (Erm.Io.to_string r) in
  Alcotest.(check bool) "all kinds roundtrip" true (Erm.Relation.equal r r');
  let schema = Erm.Relation.schema r in
  let t = Erm.Relation.find r [ V.int 1 ] in
  Alcotest.(check bool) "quoted string preserved" true
    (V.equal (V.string "hello world")
       (Erm.Etuple.definite_value schema t "label"))

let test_csv_roundtrip () =
  let r = Erm.Io.relation_of_string sample in
  let csv = Erm.Render.to_csv ~digits:12 r in
  let r' = Erm.Io.relation_of_csv (Erm.Relation.schema r) csv in
  Alcotest.(check bool) "csv round-trips" true (Erm.Relation.equal r r')

let test_csv_roundtrip_paper () =
  let csv = Erm.Render.to_csv ~digits:12 Paperdata.r_a in
  let r' = Erm.Io.relation_of_csv Paperdata.schema csv in
  Alcotest.(check bool) "R_A survives csv" true
    (Erm.Relation.equal r' Paperdata.r_a)

let test_csv_quoting () =
  (* Quoted fields with commas (evidence sets) and embedded quotes. *)
  let r = Erm.Io.relation_of_string sample in
  let schema = Erm.Relation.schema r in
  let csv = Erm.Render.to_csv ~digits:12 r in
  Alcotest.(check bool) "evidence fields are quoted" true
    (String.length csv > 0
    &&
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length csv && (String.sub csv i n = sub || go (i + 1))
      in
      go 0
    in
    contains "\"[");
  Alcotest.(check bool) "reimport parses the quoting" true
    (Erm.Relation.cardinal (Erm.Io.relation_of_csv schema csv) = 2)

let test_csv_errors () =
  let schema = Erm.Relation.schema (Erm.Io.relation_of_string sample) in
  let rejects what input =
    Alcotest.(check bool)
      what true
      (match Erm.Io.relation_of_csv schema input with
      | _ -> false
      | exception Erm.Io.Io_error _ -> true)
  in
  rejects "empty" "";
  rejects "wrong header" "a,b,c\n";
  rejects "short record"
    "name,age,kind,\"(sn,sp)\"\nrex,3\n";
  rejects "unterminated quote"
    "name,age,kind,\"(sn,sp)\"\n\"rex,3,[dog^1],\"(1, 1)\"\n"

let () =
  Alcotest.run "io"
    [ ( "parse",
        [ Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "multiple relations" `Quick
            test_multiple_relations;
          Alcotest.test_case "error line numbers" `Quick test_error_lines;
          Alcotest.test_case "CWA enforced on load" `Quick test_cwa_on_load ]
      );
      ( "roundtrip",
        [ Alcotest.test_case "sample" `Quick test_roundtrip_sample;
          Alcotest.test_case "paper tables" `Quick test_roundtrip_paper_tables;
          Alcotest.test_case "load/save files" `Quick test_load_save;
          Alcotest.test_case "value kinds" `Quick test_value_kinds_roundtrip ]
      );
      ( "csv",
        [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "paper data" `Quick test_csv_roundtrip_paper;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "errors" `Quick test_csv_errors ] ) ]
