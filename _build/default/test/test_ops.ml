(* The five extended operators of §3 on small hand-built relations:
   selection supports (is- and θ-predicates, including the paper's
   §3.1.1 inline example), thresholds, union corner cases and conflict
   reporting, product, join, and the select-over-product ≡ join law. *)

module V = Dst.Value
module Vs = Dst.Vset
module D = Dst.Domain
module M = Dst.Mass.F
module S = Dst.Support
module P = Erm.Predicate

let feq = Alcotest.float 1e-9
let sup = Alcotest.testable S.pp S.equal

let colors = D.of_strings "color" [ "red"; "green"; "blue" ]
let sizes = D.of_values "size" [ V.int 1; V.int 2; V.int 4; V.int 5; V.int 6 ]

let schema =
  Erm.Schema.make ~name:"boxes"
    ~key:[ Erm.Attr.definite "id" "string" ]
    ~nonkey:
      [ Erm.Attr.definite "shelf" "string";
        Erm.Attr.evidential "color" colors;
        Erm.Attr.evidential "size" sizes ]

let box ?(tm = S.certain) ?(shelf = "s1") id color size =
  Erm.Etuple.make schema
    ~key:[ V.string id ]
    ~cells:
      [ Erm.Etuple.Definite (V.string shelf);
        Erm.Etuple.Evidence (Dst.Evidence.of_string colors color);
        Erm.Etuple.Evidence (Dst.Evidence.of_string sizes size) ]
    ~tm

let boxes =
  Erm.Relation.of_tuples schema
    [ box "b1" "[red^0.6; ~^0.4]" "[1^1]";
      box "b2" ~shelf:"s2" "[green^1]" "[{1,4}^0.6; {2,6}^0.4]";
      box ~tm:(S.make ~sn:0.5 ~sp:0.8) "b3" "[blue^0.5; green^0.5]" "[5^1]" ]

let find r id = Erm.Relation.find r [ V.string id ]
let tm_of r id = Erm.Etuple.tm (find r id)

(* --- Selection ------------------------------------------------------ *)

let test_select_is () =
  let r = Erm.Ops.select (P.is_values "color" [ "red" ]) boxes in
  (* b1: Bel = 0.6, Pls = 1; b2 and b3 have Bel = 0 -> dropped. *)
  Alcotest.(check int) "only b1 survives" 1 (Erm.Relation.cardinal r);
  Alcotest.check sup "b1 membership" (S.make ~sn:0.6 ~sp:1.0) (tm_of r "b1")

let test_select_retains_original_cells () =
  (* Footnote 4: selection does not modify attribute values. *)
  let r = Erm.Ops.select (P.is_values "color" [ "red" ]) boxes in
  Alcotest.(check bool)
    "cells unchanged" true
    (List.for_all2 Erm.Etuple.cell_equal
       (Erm.Etuple.cells (find r "b1"))
       (Erm.Etuple.cells (find boxes "b1")))

let test_select_on_definite_attr () =
  let r =
    Erm.Ops.select
      (P.is_ "shelf" (Vs.of_strings [ "s2" ]))
      boxes
  in
  Alcotest.(check int) "definite match is crisp" 1 (Erm.Relation.cardinal r);
  Alcotest.check sup "full certainty" S.certain (tm_of r "b2")

let test_select_threshold () =
  let pred = P.is_values "color" [ "green"; "blue" ] in
  let all = Erm.Ops.select pred boxes in
  Alcotest.(check int) "b2 and b3" 2 (Erm.Relation.cardinal all);
  let strict =
    Erm.Ops.select ~threshold:(Erm.Threshold.sn_ge 0.9) pred boxes
  in
  Alcotest.(check int) "sn >= 0.9 keeps only b2" 1
    (Erm.Relation.cardinal strict);
  let certain = Erm.Ops.select ~threshold:Erm.Threshold.certain_only pred boxes in
  Alcotest.(check int) "sn = 1 keeps only b2" 1 (Erm.Relation.cardinal certain);
  let sp_cap =
    Erm.Ops.select ~threshold:(Erm.Threshold.sp_ge 0.9) pred boxes
  in
  Alcotest.(check int) "sp >= 0.9" 1 (Erm.Relation.cardinal sp_cap)

let test_select_theta_paper_example () =
  (* §3.1.1: [{1,4}^0.6; {2,6}^0.4] θ [{2,4}^0.8; 5^0.2]. Under the
     formal ∀∀ definition, ≤ gives (0.12, 1); under the ∀∃ reading the
     paper's printed (0.6, 1) follows. Both are implemented. *)
  let a =
    P.Const
      (Erm.Etuple.Evidence
         (Dst.Evidence.of_string sizes "[{1,4}^0.6; {2,6}^0.4]"))
  in
  let b =
    P.Const
      (Erm.Etuple.Evidence (Dst.Evidence.of_string sizes "[{2,4}^0.8; 5^0.2]"))
  in
  let t = find boxes "b1" in
  let forall_forall = P.eval schema t (P.theta P.Le a b) in
  Alcotest.check sup "formal definition: (0.12, 1)" (S.make ~sn:0.12 ~sp:1.0)
    forall_forall;
  let forall_exists = P.eval schema t (P.theta_fe P.Le a b) in
  Alcotest.check sup "paper's worked numbers: (0.6, 1)"
    (S.make ~sn:0.6 ~sp:1.0) forall_exists

let test_select_theta_between_attrs () =
  (* b2's size [{1,4}^0.6; {2,6}^0.4] = 4 against a constant. *)
  let pred = P.theta P.Eq (P.Field "size") (P.Const (Erm.Etuple.Definite (V.int 1))) in
  let r = Erm.Ops.select pred boxes in
  (* b1: size {1} = 1 definitely (sn=1). b2: {1,4} =? {1}: not forall;
     exists -> sp 0.6. sn=0 -> dropped. *)
  Alcotest.(check int) "b1 only" 1 (Erm.Relation.cardinal r);
  Alcotest.check sup "b1 crisp" S.certain (tm_of r "b1")

let test_select_theta_type_mismatch () =
  let pred =
    P.theta P.Lt (P.Field "size") (P.Const (Erm.Etuple.Definite (V.string "x")))
  in
  Alcotest.(check bool)
    "ordered θ across kinds raises" true
    (match Erm.Ops.select pred boxes with
    | _ -> false
    | exception V.Type_mismatch _ -> true);
  (* Equality across kinds is just false, not an error. *)
  let eq_pred =
    P.theta P.Eq (P.Field "size") (P.Const (Erm.Etuple.Definite (V.string "x")))
  in
  Alcotest.(check int) "= across kinds selects nothing" 0
    (Erm.Relation.cardinal (Erm.Ops.select eq_pred boxes))

let test_select_compound () =
  (* The size domain holds ints, so the is-set must too. *)
  let pred =
    P.(is_values "color" [ "red" ] &&& is_ "size" (Vs.of_list [ V.int 1 ]))
  in
  let r = Erm.Ops.select pred boxes in
  Alcotest.check sup "multiplicative supports: (0.6·1, 1·1)"
    (S.make ~sn:0.6 ~sp:1.0) (tm_of r "b1")

let test_select_or_not_extensions () =
  let p_red = P.is_values "color" [ "red" ] in
  let t = find boxes "b1" in
  let s_or = P.eval schema t P.(p_red ||| p_red) in
  Alcotest.check sup "or of (0.6,1) with itself" (S.make ~sn:0.84 ~sp:1.0) s_or;
  let s_not = P.eval schema t (P.not_ p_red) in
  Alcotest.check sup "not (0.6,1) = (0, 0.4)" (S.make ~sn:0.0 ~sp:0.4) s_not;
  Alcotest.(check bool) "paper_fragment flags extensions" false
    (P.paper_fragment (P.not_ p_red));
  Alcotest.(check bool) "conjunctions are in the paper fragment" true
    (P.paper_fragment P.(p_red &&& p_red))

let test_select_unknown_attr () =
  Alcotest.(check bool)
    "unknown attribute raises" true
    (match Erm.Ops.select (P.is_values "wheels" [ "x" ]) boxes with
    | _ -> false
    | exception P.Predicate_error _ -> true)

(* --- Projection ----------------------------------------------------- *)

let test_project () =
  let r = Erm.Ops.project [ "id"; "color" ] boxes in
  Alcotest.(check int) "all tuples kept" 3 (Erm.Relation.cardinal r);
  Alcotest.(check int) "narrowed arity" 2
    (Erm.Schema.arity (Erm.Relation.schema r));
  Alcotest.check sup "membership retained"
    (S.make ~sn:0.5 ~sp:0.8) (tm_of r "b3");
  Alcotest.(check bool)
    "projecting away the key is an error" true
    (match Erm.Ops.project [ "color" ] boxes with
    | _ -> false
    | exception Erm.Schema.Schema_error _ -> true)

(* --- Union ---------------------------------------------------------- *)

let other_boxes =
  Erm.Relation.of_tuples
    (Erm.Schema.rename_relation "boxes2" schema)
    [ box "b1" "[red^0.5; green^0.5]" "[1^1]";
      box ~tm:(S.make ~sn:0.9 ~sp:1.0) "b9" "[blue^1]" "[6^1]" ]

let test_union_merges_and_passes_through () =
  let u = Erm.Ops.union boxes other_boxes in
  Alcotest.(check int) "b1 merged, b2 b3 b9 pass through" 4
    (Erm.Relation.cardinal u);
  (* b1 color: [red^.6, Ω^.4] ⊕ [red^.5, green^.5]:
     red .3+.2=.5, green .2, κ=.3 -> red 5/7, green 2/7. *)
  let color = Erm.Etuple.evidence schema (find u "b1") "color" in
  Alcotest.check feq "red 5/7" (5.0 /. 7.0)
    (M.mass color (Vs.of_strings [ "red" ]));
  Alcotest.check feq "green 2/7" (2.0 /. 7.0)
    (M.mass color (Vs.of_strings [ "green" ]));
  (* Pass-through tuples keep their membership. *)
  Alcotest.check sup "b9 untouched" (S.make ~sn:0.9 ~sp:1.0) (tm_of u "b9");
  Alcotest.check sup "b3 untouched" (S.make ~sn:0.5 ~sp:0.8) (tm_of u "b3")

let test_union_incompatible () =
  let other =
    Erm.Relation.empty
      (Erm.Schema.make ~name:"x"
         ~key:[ Erm.Attr.definite "id" "string" ]
         ~nonkey:[])
  in
  Alcotest.(check bool)
    "incompatible schemas rejected" true
    (match Erm.Ops.union boxes other with
    | _ -> false
    | exception Erm.Ops.Incompatible_schemas _ -> true)

let test_union_total_conflict_raises () =
  let a = Erm.Relation.of_tuples schema [ box "k" "[red^1]" "[1^1]" ] in
  let b = Erm.Relation.of_tuples schema [ box "k" "[green^1]" "[1^1]" ] in
  Alcotest.check_raises "raises Total_conflict" M.Total_conflict (fun () ->
      ignore (Erm.Ops.union a b))

let test_union_report () =
  let a =
    Erm.Relation.of_tuples schema
      [ box "good" "[red^0.5; ~^0.5]" "[1^1]";
        box "bad" "[red^1]" "[1^1]";
        box "worse" ~shelf:"s1" "[red^1]" "[1^1]" ]
  in
  let b =
    Erm.Relation.of_tuples schema
      [ box "good" "[red^0.8; ~^0.2]" "[1^1]";
        box "bad" "[green^1]" "[1^1]";
        box "worse" ~shelf:"s9" "[red^1]" "[1^1]" ]
  in
  let result, conflicts = Erm.Ops.union_report a b in
  Alcotest.(check int) "only the clean pair merges" 1
    (Erm.Relation.cardinal result);
  Alcotest.(check int) "two conflicts reported" 2 (List.length conflicts);
  let attrs =
    List.filter_map (fun c -> c.Erm.Ops.conflict_attr) conflicts
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "conflicts name their columns" [ "color"; "shelf" ] attrs

let test_union_associative () =
  let third =
    Erm.Relation.of_tuples schema
      [ box "b1" "[red^0.7; ~^0.3]" "[1^1]"; box "b7" "[green^1]" "[2^1]" ]
  in
  Alcotest.(check bool)
    "(a ∪ b) ∪ c = a ∪ (b ∪ c)" true
    (Erm.Relation.equal
       (Erm.Ops.union (Erm.Ops.union boxes other_boxes) third)
       (Erm.Ops.union boxes (Erm.Ops.union other_boxes third)))

(* --- Product and join ----------------------------------------------- *)

let shelves_schema =
  Erm.Schema.make ~name:"shelves"
    ~key:[ Erm.Attr.definite "sid" "string" ]
    ~nonkey:[ Erm.Attr.definite "room" "string" ]

let shelves =
  Erm.Relation.of_tuples shelves_schema
    [ Erm.Etuple.make shelves_schema ~key:[ V.string "s1" ]
        ~cells:[ Erm.Etuple.Definite (V.string "attic") ]
        ~tm:S.certain;
      Erm.Etuple.make shelves_schema ~key:[ V.string "s2" ]
        ~cells:[ Erm.Etuple.Definite (V.string "cellar") ]
        ~tm:(S.make ~sn:0.5 ~sp:1.0) ]

let test_product () =
  let p = Erm.Ops.product boxes shelves in
  Alcotest.(check int) "3 x 2 pairs" 6 (Erm.Relation.cardinal p);
  Alcotest.(check int) "key concatenation" 2
    (Erm.Schema.key_arity (Erm.Relation.schema p));
  (* Membership multiplies: b3 (0.5, 0.8) x s2 (0.5, 1). *)
  let t = Erm.Relation.find p [ V.string "b3"; V.string "s2" ] in
  Alcotest.check sup "F_TM" (S.make ~sn:0.25 ~sp:0.8) (Erm.Etuple.tm t)

let test_join_equals_select_product () =
  let pred =
    P.theta P.Eq (P.Field "shelf") (P.Field "sid")
  in
  let joined = Erm.Ops.join pred boxes shelves in
  let via_product = Erm.Ops.select pred (Erm.Ops.product boxes shelves) in
  Alcotest.(check bool) "⋈ = σ∘× (§3.5)" true
    (Erm.Relation.equal joined via_product);
  Alcotest.(check int) "each box meets its shelf" 3
    (Erm.Relation.cardinal joined)

let test_join_threshold () =
  let pred = P.theta P.Eq (P.Field "shelf") (P.Field "sid") in
  let strict =
    Erm.Ops.join ~threshold:Erm.Threshold.certain_only pred boxes shelves
  in
  (* b1-s1 is (1,1); b2-s2 is (0.5,1); b3-s1 is (0.5,0.8). *)
  Alcotest.(check int) "only fully certain pairs" 1
    (Erm.Relation.cardinal strict)

let test_rename_attrs_op () =
  let r = Erm.Ops.rename_attrs (fun n -> "x_" ^ n) boxes in
  Alcotest.(check bool) "renamed schema" true
    (Erm.Schema.mem (Erm.Relation.schema r) "x_color");
  Alcotest.(check int) "tuples preserved" 3 (Erm.Relation.cardinal r)

let test_intersect_keys () =
  let keys = Erm.Ops.intersect_keys boxes other_boxes in
  Alcotest.(check int) "one shared key" 1 (List.length keys)

let () =
  Alcotest.run "ops"
    [ ( "select",
        [ Alcotest.test_case "is-predicate" `Quick test_select_is;
          Alcotest.test_case "original cells retained" `Quick
            test_select_retains_original_cells;
          Alcotest.test_case "definite attributes" `Quick
            test_select_on_definite_attr;
          Alcotest.test_case "thresholds" `Quick test_select_threshold;
          Alcotest.test_case "θ paper example (both semantics)" `Quick
            test_select_theta_paper_example;
          Alcotest.test_case "θ against constants" `Quick
            test_select_theta_between_attrs;
          Alcotest.test_case "θ type mismatch" `Quick
            test_select_theta_type_mismatch;
          Alcotest.test_case "compound predicates" `Quick test_select_compound;
          Alcotest.test_case "or/not extensions" `Quick
            test_select_or_not_extensions;
          Alcotest.test_case "unknown attribute" `Quick
            test_select_unknown_attr ] );
      ("project", [ Alcotest.test_case "projection" `Quick test_project ]);
      ( "union",
        [ Alcotest.test_case "merge and pass-through" `Quick
            test_union_merges_and_passes_through;
          Alcotest.test_case "incompatible schemas" `Quick
            test_union_incompatible;
          Alcotest.test_case "total conflict raises" `Quick
            test_union_total_conflict_raises;
          Alcotest.test_case "union_report" `Quick test_union_report;
          Alcotest.test_case "associativity" `Quick test_union_associative ] );
      ( "product-join",
        [ Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "join = select of product" `Quick
            test_join_equals_select_product;
          Alcotest.test_case "join threshold" `Quick test_join_threshold;
          Alcotest.test_case "rename" `Quick test_rename_attrs_op;
          Alcotest.test_case "intersect_keys" `Quick test_intersect_keys ] ) ]
