(* Exact rational arithmetic: unit tests for normalization, the four
   operations, ordering, conversion, and overflow behaviour, plus qcheck
   properties for the field laws. *)

module Q = Qarith.Q

let q = Alcotest.testable (fun ppf x -> Q.pp ppf x) Q.equal

let test_normalization () =
  Alcotest.check q "6/8 reduces to 3/4" (Q.make 3 4) (Q.make 6 8);
  Alcotest.check q "negative denominator moves to numerator" (Q.make (-1) 2)
    (Q.make 1 (-2));
  Alcotest.check q "-3/-6 is 1/2" (Q.make 1 2) (Q.make (-3) (-6));
  Alcotest.check q "0/5 is zero" Q.zero (Q.make 0 5);
  Alcotest.(check int) "den of normalized zero" 1 (Q.den Q.zero);
  Alcotest.check q "42/42 is one" Q.one (Q.make 42 42)

let test_zero_denominator () =
  Alcotest.check_raises "make _ 0" Q.Division_by_zero (fun () ->
      ignore (Q.make 1 0));
  Alcotest.check_raises "div by zero" Q.Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv zero" Q.Division_by_zero (fun () ->
      ignore (Q.inv Q.zero))

let test_arithmetic () =
  Alcotest.check q "1/2 + 1/3 = 5/6" (Q.make 5 6)
    (Q.add (Q.make 1 2) (Q.make 1 3));
  Alcotest.check q "1/2 - 1/3 = 1/6" (Q.make 1 6)
    (Q.sub (Q.make 1 2) (Q.make 1 3));
  Alcotest.check q "2/3 * 3/4 = 1/2" (Q.make 1 2)
    (Q.mul (Q.make 2 3) (Q.make 3 4));
  Alcotest.check q "(1/2) / (3/4) = 2/3" (Q.make 2 3)
    (Q.div (Q.make 1 2) (Q.make 3 4));
  Alcotest.check q "neg (2/3)" (Q.make (-2) 3) (Q.neg (Q.make 2 3));
  Alcotest.check q "abs (-2/3)" (Q.make 2 3) (Q.abs (Q.make (-2) 3));
  Alcotest.check q "inv (2/3) = 3/2" (Q.make 3 2) (Q.inv (Q.make 2 3));
  Alcotest.check q "inv (-2/3) = -3/2" (Q.make (-3) 2) (Q.inv (Q.make (-2) 3))

let test_paper_fractions () =
  (* The §2.2 normalization: (1/4 + 1/8) / (1 - 1/8) = 3/7 etc. *)
  let kappa = Q.make 1 8 in
  let norm = Q.sub Q.one kappa in
  Alcotest.check q "ca mass" (Q.make 3 7)
    (Q.div (Q.add (Q.make 1 4) (Q.make 1 8)) norm);
  Alcotest.check q "hu mass" (Q.make 1 3)
    (Q.div (Q.add (Q.make 1 6) (Q.add (Q.make 1 12) (Q.make 1 24))) norm);
  Alcotest.check q "subset masses" (Q.make 2 21) (Q.div (Q.make 1 12) norm);
  Alcotest.check q "omega mass" (Q.make 1 21) (Q.div (Q.make 1 24) norm)

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Q.(make 1 3 < make 1 2);
  Alcotest.(check bool) "-1/2 < 1/3" true Q.(make (-1) 2 < make 1 3);
  Alcotest.(check bool) "2/4 = 1/2" true Q.(make 2 4 = make 1 2);
  Alcotest.(check int) "sign of -5/7" (-1) (Q.sign (Q.make (-5) 7));
  Alcotest.(check int) "sign of zero" 0 (Q.sign Q.zero);
  Alcotest.check q "min" (Q.make 1 3) (Q.min (Q.make 1 3) (Q.make 1 2));
  Alcotest.check q "max" (Q.make 1 2) (Q.max (Q.make 1 3) (Q.make 1 2))

let test_to_float () =
  Alcotest.(check (float 1e-12)) "3/4" 0.75 (Q.to_float (Q.make 3 4));
  Alcotest.(check (float 1e-12)) "1/3" (1.0 /. 3.0) (Q.to_float (Q.make 1 3))

let test_of_float_dyadic () =
  Alcotest.check q "0.25 is 1/4" (Q.make 1 4) (Q.of_float_dyadic 0.25);
  Alcotest.check q "0.5 is 1/2" (Q.make 1 2) (Q.of_float_dyadic 0.5);
  Alcotest.check q "-0.75 is -3/4" (Q.make (-3) 4) (Q.of_float_dyadic (-0.75));
  Alcotest.check q "3.0 is 3" (Q.of_int 3) (Q.of_float_dyadic 3.0);
  Alcotest.check q "2^-40 survives exactly"
    (Q.make 1 (1 lsl 40))
    (Q.of_float_dyadic (Float.ldexp 1.0 (-40)));
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Q.of_float_dyadic: not finite") (fun () ->
      ignore (Q.of_float_dyadic Float.nan));
  Alcotest.check_raises "infinity rejected"
    (Invalid_argument "Q.of_float_dyadic: not finite") (fun () ->
      ignore (Q.of_float_dyadic Float.infinity))

let test_overflow () =
  let big = Q.make max_int 1 in
  Alcotest.check_raises "max_int * max_int overflows" Q.Overflow (fun () ->
      ignore (Q.mul big big));
  Alcotest.check_raises "max_int + max_int overflows" Q.Overflow (fun () ->
      ignore (Q.add big big));
  (* Cross-reduction keeps representable products representable. *)
  Alcotest.check q "(max_int/2) * (2/max_int) = 1" Q.one
    (Q.mul (Q.make max_int 2) (Q.make 2 max_int))

let test_pp () =
  Alcotest.(check string) "integer prints bare" "3" (Q.to_string (Q.of_int 3));
  Alcotest.(check string)
    "fraction prints n/d" "3/7"
    (Q.to_string (Q.make 3 7));
  Alcotest.(check string) "negative" "-1/2" (Q.to_string (Q.make 1 (-2)))

(* qcheck: field laws over a bounded generator that cannot overflow. *)
let rational =
  QCheck.map
    ~rev:(fun r -> (Q.num r, Q.den r))
    (fun (n, d) -> Q.make n (1 + abs d))
    QCheck.(pair (int_range (-1000) 1000) (int_range 0 1000))

let prop name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 arb law)

let qcheck_tests =
  [ prop "add commutes"
      (QCheck.pair rational rational)
      (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a));
    prop "mul commutes"
      (QCheck.pair rational rational)
      (fun (a, b) -> Q.equal (Q.mul a b) (Q.mul b a));
    prop "add associates"
      (QCheck.triple rational rational rational)
      (fun (a, b, c) -> Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c));
    prop "mul distributes over add"
      (QCheck.triple rational rational rational)
      (fun (a, b, c) ->
        Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    prop "sub then add restores"
      (QCheck.pair rational rational)
      (fun (a, b) -> Q.equal a (Q.add (Q.sub a b) b));
    prop "double negation" rational (fun a -> Q.equal a (Q.neg (Q.neg a)));
    prop "compare antisymmetric"
      (QCheck.pair rational rational)
      (fun (a, b) -> Q.compare a b = -Q.compare b a);
    prop "to_float monotone"
      (QCheck.pair rational rational)
      (fun (a, b) ->
        if Q.compare a b < 0 then Q.to_float a <= Q.to_float b else true);
    prop "of_float_dyadic inverts to_float on dyadics"
      (QCheck.pair (QCheck.int_range (-4096) 4096) (QCheck.int_range 0 10))
      (fun (n, e) ->
        let x = Q.make n (1 lsl e) in
        Q.equal x (Q.of_float_dyadic (Q.to_float x))) ]

let () =
  Alcotest.run "qarith"
    [ ( "unit",
        [ Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "zero denominator" `Quick test_zero_denominator;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "paper fractions" `Quick test_paper_fractions;
          Alcotest.test_case "ordering" `Quick test_compare;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "of_float_dyadic" `Quick test_of_float_dyadic;
          Alcotest.test_case "overflow" `Quick test_overflow;
          Alcotest.test_case "printing" `Quick test_pp ] );
      ("laws", qcheck_tests) ]
