(* Relation deltas and federated query strategies — the tooling around
   re-integration and the paper's §4 "query processing combined with
   conflict resolution" question. *)

module V = Dst.Value
module S = Dst.Support
module M = Dst.Mass.F

let feq = Alcotest.float 1e-9

(* --- Delta ------------------------------------------------------------ *)

let colors = Dst.Domain.of_strings "color" [ "red"; "green"; "blue" ]

let schema =
  Erm.Schema.make ~name:"v"
    ~key:[ Erm.Attr.definite "k" "string" ]
    ~nonkey:[ Erm.Attr.evidential "color" colors ]

let tup ?(tm = S.certain) k ev =
  Erm.Etuple.make schema
    ~key:[ V.string k ]
    ~cells:[ Erm.Etuple.Evidence (Dst.Evidence.of_string colors ev) ]
    ~tm

let v1 =
  Erm.Relation.of_tuples schema
    [ tup "stable" "[red^1]";
      tup "sharpened" "[red^0.5; ~^0.5]";
      tup "contradicted" "[red^0.9; ~^0.1]";
      tup ~tm:(S.make ~sn:0.5 ~sp:1.0) "strengthened" "[green^1]";
      tup "dropped" "[blue^1]" ]

let v2 =
  Erm.Relation.of_tuples schema
    [ tup "stable" "[red^1]";
      tup "sharpened" "[red^0.8; ~^0.2]";
      tup "contradicted" "[green^0.9; ~^0.1]";
      tup ~tm:(S.make ~sn:0.9 ~sp:1.0) "strengthened" "[green^1]";
      tup "appeared" "[red^1]" ]

let delta = Erm.Delta.diff v1 v2

let find_change k =
  List.find
    (fun (c : Erm.Delta.tuple_change) ->
      c.changed_key = [ V.string k ])
    delta.changed

let test_delta_partition () =
  Alcotest.(check int) "one added" 1 (List.length delta.added);
  Alcotest.(check int) "one removed" 1 (List.length delta.removed);
  Alcotest.(check int) "three changed" 3 (List.length delta.changed);
  Alcotest.(check int) "one unchanged" 1 delta.unchanged;
  Alcotest.(check bool) "not empty" false (Erm.Delta.is_empty delta);
  Alcotest.(check bool) "identity diff is empty" true
    (Erm.Delta.is_empty (Erm.Delta.diff v1 v1))

let test_delta_conflict_grading () =
  let sharpened = find_change "sharpened" in
  let contradicted = find_change "contradicted" in
  (* Refinement: [red^.5,Ω^.5] vs [red^.8,Ω^.2] never conflict. *)
  (match sharpened.cell_changes with
  | [ c ] -> Alcotest.check feq "refinement has kappa 0" 0.0 c.revision_conflict
  | _ -> Alcotest.fail "expected one cell change");
  (* Contradiction: [red^.9,Ω^.1] vs [green^.9,Ω^.1] -> κ = 0.81. *)
  (match contradicted.cell_changes with
  | [ c ] ->
      Alcotest.check feq "contradiction has high kappa" 0.81
        c.revision_conflict
  | _ -> Alcotest.fail "expected one cell change");
  Alcotest.check feq "max over the delta" 0.81
    (Erm.Delta.max_revision_conflict delta)

let test_delta_membership_only_change () =
  let strengthened = find_change "strengthened" in
  Alcotest.(check int) "no cell changes" 0
    (List.length strengthened.cell_changes);
  Alcotest.check feq "old sn" 0.5 (S.sn strengthened.old_tm);
  Alcotest.check feq "new sn" 0.9 (S.sn strengthened.new_tm)

let test_delta_pp () =
  let text = Format.asprintf "%a" Erm.Delta.pp delta in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length text && (String.sub text i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "mentions the added key" true (contains "+ (appeared)");
  Alcotest.(check bool) "mentions the removed key" true (contains "- (dropped)");
  Alcotest.(check bool) "mentions kappa" true (contains "kappa")

(* --- Federated strategies --------------------------------------------- *)

let pred = Erm.Predicate.is_values "speciality" [ "mu" ]
let threshold = Erm.Threshold.sn_gt 0.5

let test_strategies_agree_on_content_keys () =
  (* On the paper data with this query, both strategies find the same
     entities; what differs is the membership arithmetic. *)
  let c =
    Integration.Federated.compare ~threshold pred Paperdata.r_a Paperdata.r_b
  in
  Alcotest.(check int) "no missing keys here" 0 (List.length c.missing);
  Alcotest.(check int) "no spurious keys here" 0 (List.length c.spurious);
  Alcotest.(check int) "mehl and ashiana both ways" 2
    (Erm.Relation.cardinal c.reference)

let test_strategies_memberships_differ () =
  let c =
    Integration.Federated.compare ~threshold pred Paperdata.r_a Paperdata.r_b
  in
  (* Reference mehl: F_TM((5/6,5/6), (1,1)) = (5/6, 5/6).
     Approximation: σ̂ first gives A (0.8·0.5) = (0.4,0.4), B (1·0.8, 1·1)
     = (0.8,1); Dempster of those ≠ 5/6 — the support got counted twice. *)
  let sn_of r =
    S.sn (Erm.Etuple.tm (Erm.Relation.find r [ V.string "mehl" ]))
  in
  Alcotest.check feq "reference keeps the integrated membership"
    (5.0 /. 6.0) (sn_of c.reference);
  Alcotest.(check bool) "approximation deviates" true (c.max_sn_gap > 0.01);
  Alcotest.(check bool) "gap is what the mehl row shows" true
    (Float.abs (Float.abs (sn_of c.reference -. sn_of c.approximate)
               -. c.max_sn_gap)
    < 1e-9)

let test_strategies_can_disagree_on_answers () =
  (* A borderline tuple. Each source: evidence [red^0.5; Ω^0.5] and
     membership (0.9, 1).
     Reference: merged evidence has Bel({red}) = 0.75 and the merged
     membership is F((0.9,1),(0.9,1)) = (0.99,1), so sn = 0.7425 > 0.7.
     Approximation: each source's local support is only (0.5, 1), giving
     tm' = (0.45, 1); F((0.45,1),(0.45,1)) has sn ≈ 0.6975 < 0.7.
     The same entity clears the threshold one way and not the other. *)
  let mk name ev tm = Erm.Relation.of_tuples schema [ tup ~tm name ev ] in
  let a = mk "x" "[red^0.5; ~^0.5]" (S.make ~sn:0.9 ~sp:1.0) in
  let b = mk "x" "[red^0.5; ~^0.5]" (S.make ~sn:0.9 ~sp:1.0) in
  let pred = Erm.Predicate.is_values "color" [ "red" ] in
  let threshold = Erm.Threshold.sn_gt 0.7 in
  let c = Integration.Federated.compare ~threshold pred a b in
  Alcotest.(check int) "reference answers" 1
    (Erm.Relation.cardinal c.reference);
  Alcotest.(check int) "approximation misses the tuple" 1
    (List.length c.missing)

let test_select_first_is_cheaper_input () =
  (* The approximation merges only the selected candidates: with a
     selective predicate the merge input shrinks. *)
  let rng = Workload.Rng.create 77 in
  let gschema = Workload.Gen.schema "fed" in
  let a, b = Workload.Gen.source_pair rng ~size:200 ~overlap:0.8 gschema in
  let pred = Erm.Predicate.is_values "e0" [ "v0" ] in
  let selected_a = Erm.Ops.select pred a in
  Alcotest.(check bool) "predicate is selective" true
    (Erm.Relation.cardinal selected_a < Erm.Relation.cardinal a / 2);
  (* And the approximation still satisfies closure + threshold. *)
  let approx =
    Integration.Federated.select_first ~threshold:(Erm.Threshold.sn_gt 0.3)
      pred a b
  in
  Alcotest.(check bool) "closure" true (Erm.Relation.satisfies_cwa approx);
  Erm.Relation.iter
    (fun t ->
      if S.sn (Erm.Etuple.tm t) <= 0.3 then Alcotest.fail "threshold violated")
    approx

let () =
  Alcotest.run "federated"
    [ ( "delta",
        [ Alcotest.test_case "partition" `Quick test_delta_partition;
          Alcotest.test_case "conflict grading" `Quick
            test_delta_conflict_grading;
          Alcotest.test_case "membership-only changes" `Quick
            test_delta_membership_only_change;
          Alcotest.test_case "rendering" `Quick test_delta_pp ] );
      ( "strategies",
        [ Alcotest.test_case "same keys on the paper query" `Quick
            test_strategies_agree_on_content_keys;
          Alcotest.test_case "memberships differ (non-equivalence)" `Quick
            test_strategies_memberships_differ;
          Alcotest.test_case "borderline answers can flip" `Quick
            test_strategies_can_disagree_on_answers;
          Alcotest.test_case "approximation stays sound on CWA/threshold"
            `Quick test_select_first_is_cheaper_input ] ) ]
