(* Benchmark harness: one Bechamel test per paper artifact (Tables 2-5,
   Figures 1 and 3, the §2.1/§2.2 computations) plus scaling sweeps and
   baseline comparisons on synthetic workloads.

   Before timing anything, each artifact is regenerated once and checked
   against the paper so a broken build cannot produce plausible-looking
   numbers. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Correctness gate                                                    *)

let table2 () =
  Erm.Ops.select
    ~threshold:(Erm.Threshold.sn_gt 0.0)
    (Erm.Predicate.is_values "speciality" [ "si" ])
    Paperdata.r_a

let table3 () =
  Erm.Ops.select
    ~threshold:(Erm.Threshold.sn_gt 0.0)
    Erm.Predicate.(
      is_values "speciality" [ "mu" ] &&& is_values "rating" [ "ex" ])
    Paperdata.r_a

let table4 () = Erm.Ops.union Paperdata.r_a Paperdata.r_b
let table5 () = Erm.Ops.project Paperdata.table5_attrs Paperdata.r_a

let figure1_env = [ ("ra", Paperdata.r_a); ("rb", Paperdata.r_b) ]

let figure1_query =
  "SELECT * FROM (ra UNION rb) WHERE speciality IS {mu} AND rating IS {ex} \
   WITH SN > 0.5"

let figure1 () = Query.Eval.run figure1_env figure1_query

let verify () =
  let check name ok =
    Printf.printf "  [%s] %s\n" (if ok then "OK" else "FAIL") name;
    ok
  in
  let all =
    [ check "sec2.2 combination"
        (Dst.Mass.F.equal
           (Dst.Mass.F.combine Paperdata.wok_m1 Paperdata.wok_m2)
           Paperdata.wok_combined);
      check "table2" (Erm.Relation.equal (table2 ()) Paperdata.table2);
      check "table3" (Erm.Relation.equal (table3 ()) Paperdata.table3);
      check "table4" (Erm.Relation.equal (table4 ()) Paperdata.table4);
      check "table5" (Erm.Relation.equal (table5 ()) Paperdata.table5);
      check "figure1 query" (Erm.Relation.cardinal (figure1 ()) = 2) ]
  in
  if List.for_all (fun x -> x) all then
    print_endline "  all artifacts verified against the paper\n"
  else begin
    print_endline "  ARTIFACT VERIFICATION FAILED - timings would be lies";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Workload fixtures (built once, outside the timed closures)          *)

let rng = Workload.Rng.create 42

let evidence_with_focals =
  List.map
    (fun focals ->
      let dom = Workload.Gen.domain ~size:(2 * focals) "sweep" in
      let a = Workload.Gen.evidence rng ~focals ~max_focal_size:3 dom in
      let b = Workload.Gen.evidence rng ~focals ~max_focal_size:3 dom in
      (focals, a, b))
    [ 2; 4; 8; 16 ]

let sweep_schema = Workload.Gen.schema "sweep"

let relations_by_size =
  List.map
    (fun size -> (size, Workload.Gen.relation rng ~size sweep_schema))
    [ 100; 1000; 10000 ]

let union_pairs =
  List.map
    (fun overlap ->
      let a, b =
        Workload.Gen.source_pair rng ~size:1000 ~overlap sweep_schema
      in
      (overlap, a, b))
    [ 0.0; 0.5; 1.0 ]

let join_left = Workload.Gen.relation rng ~size:30 sweep_schema

let join_right =
  Erm.Ops.rename_attrs
    (fun n -> "r_" ^ n)
    (Workload.Gen.relation rng ~size:30 sweep_schema)

let baseline_pair =
  Workload.Gen.source_pair rng ~size:1000 ~overlap:0.5 sweep_schema

let pv_pair =
  let a, b = baseline_pair in
  ( Baselines.Partial_value.relation_of_extended a,
    Baselines.Partial_value.relation_of_extended b )

let ppv_pair =
  let a, b = baseline_pair in
  ( Baselines.Prob_partial.relation_of_extended a,
    Baselines.Prob_partial.relation_of_extended b )

let is_pred = Erm.Predicate.is_values "e0" [ "v0"; "v1" ]

let theta_pred =
  Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field "e0")
    (Erm.Predicate.Field "e1")

let supports =
  (Dst.Support.make ~sn:0.5 ~sp:0.8, Dst.Support.make ~sn:0.6 ~sp:1.0)

(* Ablation fixtures *)

module Mq = Dst.Mass.Make (Dst.Num.Rational)

let rational_pair =
  let frame = Dst.Mass.F.frame Paperdata.wok_m1 in
  ( Mq.make frame Paperdata.sec22_m1_exact,
    Mq.make frame Paperdata.sec22_m2_exact )

let theta_operands =
  let dom = Workload.Gen.domain ~size:12 "theta" in
  let a = Workload.Gen.evidence rng ~focals:6 ~max_focal_size:4 dom in
  let b = Workload.Gen.evidence rng ~focals:6 ~max_focal_size:4 dom in
  ( Erm.Predicate.Const (Erm.Etuple.Evidence a),
    Erm.Predicate.Const (Erm.Etuple.Evidence b) )

let ablation_sources =
  Workload.Gen.source_pair rng ~size:500 ~overlap:0.5 sweep_schema

let pushdown_env =
  let a = Workload.Gen.relation rng ~size:60 sweep_schema in
  let b =
    Erm.Ops.rename_attrs (fun n -> "r_" ^ n)
      (Workload.Gen.relation rng ~size:60 sweep_schema)
  in
  [ ("wa", a); ("wb", b) ]

let pushdown_query =
  Query.Parser.parse
    "SELECT * FROM (wa JOIN wb ON e0 = r_e0) WHERE e1 IS {v0, v1} AND r_e1 \
     IS {v2, v3}"

let pushdown_optimized = Query.Plan.optimize pushdown_env pushdown_query

let coarse_frame = Workload.Gen.domain ~size:4 "coarse"
let fine_frame = Workload.Gen.domain ~size:16 "fine"

let refining =
  Dst.Refinement.make ~coarse:coarse_frame ~fine:fine_frame (fun v ->
      match v with
      | Dst.Value.String s ->
          let base =
            4 * int_of_string (String.sub s 1 (String.length s - 1))
          in
          Dst.Vset.of_strings
            (List.init 4 (fun i -> "v" ^ string_of_int (base + i)))
      | _ -> assert false)

let coarse_evidence =
  Workload.Gen.evidence rng ~focals:3 ~max_focal_size:2 coarse_frame

let skew_dom = Workload.Gen.domain ~size:16 "skewed"

let skew_pairs =
  List.map
    (fun zipf_skew ->
      let mk () =
        Workload.Gen.evidence rng ~focals:4 ~max_focal_size:3 ~zipf_skew
          skew_dom
      in
      (zipf_skew, List.init 64 (fun _ -> (mk (), mk ()))))
    [ 0.0; 1.2 ]

let indexed_relation = Workload.Gen.relation rng ~size:10000 sweep_schema
let city_index = Erm.Index.build indexed_relation "a0"

let index_probe =
  (* Some value that actually occurs. *)
  match Erm.Relation.tuples indexed_relation with
  | t :: _ ->
      Erm.Etuple.definite_value
        (Erm.Relation.schema indexed_relation)
        t "a0"
  | [] -> assert false

let index_scan_pred =
  Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field "a0")
    (Erm.Predicate.Const (Erm.Etuple.Definite index_probe))

(* ------------------------------------------------------------------ *)
(* Tests                                                               *)

let t name f = Test.make ~name (Staged.stage f)

let artifact_tests =
  [ t "sec2.1:bel-pls" (fun () ->
        Dst.Mass.F.interval Paperdata.wok_m1
          (Dst.Vset.of_strings [ "ca"; "hu"; "si" ]));
    t "sec2.2:combine" (fun () ->
        Dst.Mass.F.combine Paperdata.wok_m1 Paperdata.wok_m2);
    t "table2:selection" table2;
    t "table3:compound-selection" table3;
    t "table4:extended-union" table4;
    t "table5:projection" table5;
    t "figure1:pipeline-query" figure1;
    t "figure1:merge-with-report" (fun () ->
        Integration.Merge.by_key Paperdata.r_a Paperdata.r_b);
    t "figure3:f-ss+f-tm" (fun () ->
        let tuple =
          Erm.Relation.find Paperdata.r_a [ Dst.Value.string "garden" ]
        in
        let support =
          Erm.Predicate.eval Paperdata.schema tuple
            (Erm.Predicate.is_values "speciality" [ "si" ])
        in
        Dst.Support.f_tm (Erm.Etuple.tm tuple) support) ]

let combine_sweep =
  List.map
    (fun (focals, a, b) ->
      t (Printf.sprintf "sweep:combine-focals-%02d" focals) (fun () ->
          Dst.Mass.F.combine a b))
    evidence_with_focals

let rules_sweep =
  let _, a, b = List.nth evidence_with_focals 2 in
  [ t "rules:dempster" (fun () -> Dst.Mass.F.combine a b);
    t "rules:yager" (fun () -> Dst.Mass.F.combine_yager a b);
    t "rules:dubois-prade" (fun () -> Dst.Mass.F.combine_dubois_prade a b);
    t "rules:average" (fun () -> Dst.Mass.F.combine_average a b);
    t "rules:disjunctive" (fun () -> Dst.Mass.F.combine_disjunctive a b) ]

let select_sweep =
  List.concat_map
    (fun (size, r) ->
      [ t (Printf.sprintf "sweep:select-is-%05d" size) (fun () ->
            Erm.Ops.select is_pred r);
        t (Printf.sprintf "sweep:select-theta-%05d" size) (fun () ->
            Erm.Ops.select theta_pred r) ])
    relations_by_size

let union_sweep =
  List.map
    (fun (overlap, a, b) ->
      t (Printf.sprintf "sweep:union-1000-overlap-%.1f" overlap) (fun () ->
          Erm.Ops.union a b))
    union_pairs

let join_tests =
  [ t "sweep:product-30x30" (fun () -> Erm.Ops.product join_left join_right);
    t "sweep:join-30x30" (fun () ->
        Erm.Ops.join
          (Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field "e0")
             (Erm.Predicate.Field "r_e0"))
          join_left join_right) ]

let baseline_tests =
  let a, b = baseline_pair in
  let pa, pb = pv_pair in
  let qa, qb = ppv_pair in
  [ t "baseline:ds-union-1000" (fun () -> Erm.Ops.union a b);
    t "baseline:partial-value-union-1000" (fun () ->
        Baselines.Partial_value.union pa pb);
    t "baseline:prob-partial-union-1000" (fun () ->
        Baselines.Prob_partial.union qa qb) ]

let query_tests =
  [ t "query:parse" (fun () -> Query.Parser.parse figure1_query);
    t "query:optimize" (fun () ->
        Query.Plan.optimize figure1_env (Query.Parser.parse figure1_query));
    t "query:evidence-parse" (fun () ->
        Dst.Evidence.of_string Paperdata.speciality
          "[si^0.5; {hu,si}^0.25; ~^0.25]") ]

let support_tests =
  let s1, s2 = supports in
  [ t "support:f-tm" (fun () -> Dst.Support.f_tm s1 s2);
    t "support:dempster" (fun () -> Dst.Support.combine s1 s2) ]

(* Ablations: design choices DESIGN.md calls out, measured head to head. *)

let ablation_tests =
  let a, b = ablation_sources in
  let q1, q2 = rational_pair in
  let ta, tb = theta_operands in
  let pred_ff = Erm.Predicate.Theta (Erm.Predicate.Le, ta, tb) in
  let pred_fe = Erm.Predicate.Theta_fe (Erm.Predicate.Le, ta, tb) in
  let garden = Erm.Relation.find Paperdata.r_a [ Dst.Value.string "garden" ] in
  [ t "ablation:merge-plain" (fun () -> Integration.Merge.by_key a b);
    t "ablation:merge-discounted" (fun () ->
        Integration.Reliability.merge_discounted ~alpha_left:0.9
          ~alpha_right:0.9 a b);
    t "ablation:merge-assess-then-discount" (fun () ->
        Integration.Reliability.merge_discounted a b);
    t "ablation:combine-float" (fun () ->
        Dst.Mass.F.combine Paperdata.wok_m1 Paperdata.wok_m2);
    t "ablation:combine-exact-rational" (fun () -> Mq.combine q1 q2);
    t "ablation:query-naive" (fun () ->
        Query.Eval.eval pushdown_env pushdown_query);
    t "ablation:query-optimized" (fun () ->
        Query.Eval.eval pushdown_env pushdown_optimized);
    t "ablation:theta-forall-forall" (fun () ->
        Erm.Predicate.eval Paperdata.schema garden pred_ff);
    t "ablation:theta-forall-exists" (fun () ->
        Erm.Predicate.eval Paperdata.schema garden pred_fe);
    t "ablation:refine-evidence" (fun () ->
        Dst.Refinement.refine refining coarse_evidence);
    t "ablation:rank-top10-of-500" (fun () -> Erm.Rank.top 10 a);
    t "ablation:select-eq-scan-10000" (fun () ->
        Erm.Ops.select index_scan_pred indexed_relation);
    t "ablation:select-eq-index-10000" (fun () ->
        Erm.Index.select_eq city_index indexed_relation index_probe);
    t "ablation:combine-approximated-16-to-6" (fun () ->
        let _, a16, b16 = List.nth evidence_with_focals 3 in
        Dst.Mass.F.combine
          (Dst.Mass.F.approximate ~max_focals:6 a16)
          (Dst.Mass.F.approximate ~max_focals:6 b16));
    t "ablation:summarize-pool-500" (fun () ->
        Erm.Summarize.pool_evidence a "e0") ]
  @ List.map
      (fun (skew, pairs) ->
        t (Printf.sprintf "sweep:union-evidence-skew-%.1f" skew) (fun () ->
            List.iter
              (fun (x, y) -> ignore (Dst.Mass.F.combine x y))
              pairs))
      skew_pairs

let federated_tests =
  let a, b = baseline_pair in
  let pred = Erm.Predicate.is_values "e0" [ "v0" ] in
  let threshold = Erm.Threshold.sn_gt 0.2 in
  [ t "federated:merge-first-1000" (fun () ->
        Integration.Federated.merge_first ~threshold pred a b);
    t "federated:select-first-1000" (fun () ->
        Integration.Federated.select_first ~threshold pred a b) ]

(* ------------------------------------------------------------------ *)
(* Span capture for the BENCH_*.json artifacts                         *)

(* Timed loops all run with tracing off (the disabled guard is the
   production configuration); afterwards one representative execution
   is repeated with spans on and its per-operator summary is embedded
   next to the timings. *)
let traced_spans f =
  Obs.Trace.clear Obs.Trace.default;
  Obs.Trace.enable Obs.Trace.default;
  (match f () with () -> () | exception _ -> ());
  let summary = Obs.Trace.summary Obs.Trace.default in
  Obs.Trace.disable Obs.Trace.default;
  Obs.Trace.clear Obs.Trace.default;
  summary

let spans_json summary =
  String.concat ",\n"
    (List.map
       (fun (name, count, total_ms) ->
         Printf.sprintf
           "    { \"op\": \"%s\", \"count\": %d, \"total_ms\": %.3f }" name
           count total_ms)
       summary)

(* ------------------------------------------------------------------ *)
(* Fault-tolerant federation: latency and result quality vs fault rate *)

(* federated:faulty — the degradation runtime over four 500-tuple
   sources at increasing failure/corruption rates. Latency is wall
   clock (the clock inside the runtime is virtual, so injected latency
   and backoff cost nothing real); quality is the largest |Δsn| of any
   key shared with the fault-free reference plus the count of entities
   lost to failed or truncated sources. Deterministic: fixed seeds.
   Results go to stdout and BENCH_federation.json. *)
let federation_fault_sweep () =
  let time f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    let rec go n =
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < 0.2 && n < 1000 then go (n + 1) else dt /. float_of_int n *. 1e9
    in
    go 1
  in
  let fed_rng = Workload.Rng.create 4242 in
  let fed_schema = Workload.Gen.schema "faulty" in
  let a, b = Workload.Gen.source_pair fed_rng ~size:500 ~overlap:0.6 fed_schema in
  let c = Workload.Gen.reobserve fed_rng a in
  let d = Workload.Gen.reobserve fed_rng b in
  let rels = [ ("fa", a); ("fb", b); ("fc", c); ("fd", d) ] in
  let reference =
    Integration.Multi.integrate
      (List.map
         (fun (n, r) ->
           { Integration.Multi.source_name = n; source_relation = r })
         rels)
  in
  let config =
    { Federation.Degrade.default with
      policy =
        { Federation.Retry.default with retries = 3; deadline_ms = Some 500.0 };
      min_sources = 1 }
  in
  let run_once fail_rate seed =
    let clock = Federation.Clock.simulated () in
    let spec =
      { Federation.Fault.none with
        fail_rate;
        corrupt_rate = fail_rate /. 2.0;
        drop_rate = 0.3;
        latency_ms = 5.0 }
    in
    let sources =
      List.map
        (fun (n, r) ->
          Federation.Fault.wrap ~seed ~clock spec
            (Federation.Source.of_relation ~name:n r))
        rels
    in
    Federation.Degrade.integrate ~config ~seed ~clock sources
  in
  print_endline
    "federated:faulty (4 sources x 500 tuples, quality vs fault-free \
     reference):";
  let rows =
    List.map
      (fun fail_rate ->
        let ns = time (fun () -> run_once fail_rate 1) in
        (* Quality over 20 seeded chaos runs: worst sn deviation on
           surviving keys, mean entity loss. *)
        let seeds = List.init 20 (fun i -> i + 1) in
        let gaps, losses =
          List.fold_left
            (fun (gaps, losses) seed ->
              match run_once fail_rate seed with
              | Error _ -> (gaps, losses +. 1.0)
              | Ok report ->
                  let integrated =
                    report.Federation.Degrade.multi.integrated
                  in
                  let gap =
                    Erm.Relation.fold
                      (fun t acc ->
                        match
                          Erm.Relation.find_opt integrated (Erm.Etuple.key t)
                        with
                        | None -> acc
                        | Some t' ->
                            Float.max acc
                              (Float.abs
                                 (Dst.Support.sn (Erm.Etuple.tm t)
                                 -. Dst.Support.sn (Erm.Etuple.tm t'))))
                      reference.Integration.Multi.integrated 0.0
                  in
                  let lost =
                    Erm.Relation.cardinal reference.Integration.Multi.integrated
                    - Erm.Relation.cardinal integrated
                  in
                  (Float.max gaps gap, losses +. float_of_int (max 0 lost)))
            (0.0, 0.0) seeds
        in
        let mean_lost = losses /. float_of_int (List.length seeds) in
        Printf.printf
          "  fail=%.1f  %10.0f ns/run  max sn gap %.4f  mean entities lost \
           %.1f\n\
           %!"
          fail_rate ns gaps mean_lost;
        (fail_rate, ns, gaps, mean_lost))
      [ 0.0; 0.2; 0.5; 0.8 ]
  in
  let spans = traced_spans (fun () -> ignore (run_once 0.5 1)) in
  let oc = open_out "BENCH_federation.json" in
  Printf.fprintf oc
    "{\n  \"federation_fault_sweep\": [\n%s\n  ],\n  \"spans\": [\n%s\n  ]\n}\n"
    (String.concat ",\n"
       (List.map
          (fun (fail_rate, ns, gap, lost) ->
            Printf.sprintf
              "    { \"fail_rate\": %.2f, \"ns_per_run\": %.0f, \
               \"max_sn_gap\": %.4f, \"mean_entities_lost\": %.1f }"
              fail_rate ns gap lost)
          rows))
    (spans_json spans);
  close_out oc;
  print_endline "  wrote BENCH_federation.json\n"

(* ------------------------------------------------------------------ *)
(* Join scaling: indexed vs nested loop, sizes 10^2 .. 10^6, plus the  *)
(* sharded engine's worker curve and the flat-vs-map kernel curve      *)

(* Bechamel's quota-driven repetition would take hours on the 10^8-pair
   nested loop, so this sweep uses a plain wall-clock timer: repeat
   until 0.2 s has elapsed (one warm-up run discarded), a single run for
   anything that already takes longer. The nested loop is only run up to
   10^4 (10^8 pairs); above that its column is null. Results go to
   stdout and BENCH_join.json. *)
let wall_time f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  let rec go n =
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < 0.2 && n < 1000 then go (n + 1) else dt /. float_of_int n *. 1e9
  in
  go 1

let join_domain_counts = [ 1; 2; 4 ]

(* Flat vs map Dempster kernel: n combinations cycling through 64
   pre-built operand pairs (distinct pairs, so the per-pair memo cache
   cannot shortcut the arithmetic). Per-operation cost is flat in n;
   the sweep shows both regimes from cold (n = 10^2) to steady-state
   (n = 10^6), where the flat kernel's advantage is pure arithmetic. *)
let combine_flat_vs_map () =
  let dom = Workload.Gen.domain ~size:10 "flatbench" in
  let frng = Workload.Rng.create 777 in
  let pairs =
    Array.init 64 (fun _ ->
        ( Workload.Gen.evidence frng ~focals:6 ~max_focal_size:3 dom,
          Workload.Gen.evidence frng ~focals:6 ~max_focal_size:3 dom ))
  in
  let it = Dst.Interner.create dom in
  let flat_pairs =
    Array.map
      (fun (a, b) -> (Dst.Flat_mass.of_mass it a, Dst.Flat_mass.of_mass it b))
      pairs
  in
  let per_op n f =
    let batch () =
      let t0 = Unix.gettimeofday () in
      for i = 0 to n - 1 do
        f (i land 63)
      done;
      (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
    in
    ignore (batch ());
    List.fold_left
      (fun acc _ -> Float.min acc (batch ()))
      Float.max_float [ 1; 2; 3 ]
  in
  print_endline "combine-scaling (flat packed kernel vs map kernel):";
  List.map
    (fun n ->
      let map_ns =
        per_op n (fun i ->
            let a, b = pairs.(i) in
            ignore (Dst.Mass.F.combine_opt a b))
      in
      let flat_ns =
        per_op n (fun i ->
            let a, b = flat_pairs.(i) in
            ignore (Dst.Flat_mass.combine_opt a b))
      in
      let speedup = map_ns /. flat_ns in
      Printf.printf
        "  n=%-8d map %8.1f ns/op  flat %8.1f ns/op  speedup %5.2fx\n%!" n
        map_ns flat_ns speedup;
      (n, map_ns, flat_ns, speedup))
    [ 100; 1_000; 10_000; 100_000; 1_000_000 ]

let join_scaling () =
  let key_eq =
    Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field "k")
      (Erm.Predicate.Field "r_k")
  in
  let join_q = Query.Parser.parse "ja JOIN jb ON k = r_k" in
  print_endline "join-scaling (equi-join on the definite key, |out| = n):";
  let rows =
    List.map
      (fun size ->
        let a =
          Workload.Gen.relation
            (Workload.Rng.create (1000 + size))
            ~size sweep_schema
        in
        let b =
          Erm.Ops.rename_attrs
            (fun n -> "r_" ^ n)
            (Workload.Gen.relation
               (Workload.Rng.create (2000 + size))
               ~size sweep_schema)
        in
        let nested_ns =
          if size > 10_000 then None (* n^2 > 10^8 pairs: hours per run *)
          else if size >= 10_000 then begin
            (* single run: n^2 = 10^8 tuple pairs *)
            let t0 = Unix.gettimeofday () in
            ignore (Erm.Ops.join key_eq a b);
            Some ((Unix.gettimeofday () -. t0) *. 1e9)
          end
          else Some (wall_time (fun () -> Erm.Ops.join key_eq a b))
        in
        let indexed_ns =
          wall_time (fun () ->
              Erm.Ops.join_indexed ~left_attr:"k" ~right_attr:"r_k" a b)
        in
        (* The same equi-join through the sharded engine (4 shards,
           growing worker counts) — metrics/tracing are off here, so
           this measures the parallel flat-kernel configuration. *)
        let env = [ ("ja", a); ("jb", b) ] in
        let sharded_ns =
          List.map
            (fun domains ->
              ( domains,
                wall_time (fun () ->
                    Query.Physical.eval_fast
                      ~ctx:(Query.Physical.create_ctx ())
                      ~strategy:
                        (Query.Physical.Sharded { shards = 4; domains })
                      env join_q) ))
            join_domain_counts
        in
        let speedup = Option.map (fun n -> n /. indexed_ns) nested_ns in
        Printf.printf "  n=%-7d nested-loop %s  indexed %12.0f ns%s\n%!" size
          (match nested_ns with
          | Some ns -> Printf.sprintf "%14.0f ns" ns
          | None -> "     (skipped) ")
          indexed_ns
          (String.concat ""
             (List.map
                (fun (d, ns) -> Printf.sprintf "  shard4/dom%d %12.0f ns" d ns)
                sharded_ns));
        (size, nested_ns, indexed_ns, speedup, sharded_ns))
      [ 100; 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let kernel_rows = combine_flat_vs_map () in
  (* Per-operator spans for a representative physical-plan execution of
     the same equi-join at n = 1000 (hash join + two scans). *)
  let spans =
    let a =
      Workload.Gen.relation (Workload.Rng.create 3000) ~size:1000 sweep_schema
    in
    let b =
      Erm.Ops.rename_attrs
        (fun n -> "r_" ^ n)
        (Workload.Gen.relation (Workload.Rng.create 4000) ~size:1000
           sweep_schema)
    in
    let env = [ ("ja", a); ("jb", b) ] in
    traced_spans (fun () ->
        ignore (Query.Physical.run env "ja JOIN jb ON k = r_k"))
  in
  let opt_ns = function
    | Some ns -> Printf.sprintf "%.0f" ns
    | None -> "null"
  in
  let opt_ratio = function
    | Some r -> Printf.sprintf "%.2f" r
    | None -> "null"
  in
  let oc = open_out "BENCH_join.json" in
  Printf.fprintf oc
    "{\n\
    \  \"join_scaling\": [\n\
     %s\n\
    \  ],\n\
    \  \"combine_flat_vs_map\": [\n\
     %s\n\
    \  ],\n\
    \  \"spans\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (String.concat ",\n"
       (List.map
          (fun (size, nested_ns, indexed_ns, speedup, sharded_ns) ->
            Printf.sprintf
              "    { \"size\": %d, \"nested_ns\": %s, \"indexed_ns\": %.0f, \
               \"speedup\": %s, \"sharded\": [%s] }"
              size (opt_ns nested_ns) indexed_ns (opt_ratio speedup)
              (String.concat ", "
                 (List.map
                    (fun (d, ns) ->
                      Printf.sprintf
                        "{ \"shards\": 4, \"domains\": %d, \"ns\": %.0f }" d ns)
                    sharded_ns)))
          rows))
    (String.concat ",\n"
       (List.map
          (fun (n, map_ns, flat_ns, speedup) ->
            Printf.sprintf
              "    { \"n\": %d, \"map_ns\": %.1f, \"flat_ns\": %.1f, \
               \"speedup\": %.2f }"
              n map_ns flat_ns speedup)
          kernel_rows))
    (spans_json spans);
  close_out oc;
  print_endline "  wrote BENCH_join.json\n"

(* ------------------------------------------------------------------ *)
(* Provenance overhead gate                                            *)

(* Three legs over the same Dempster-heavy workload (extended union of
   the 1000-tuple source pair): baseline (provenance never enabled),
   enabled (every combination records lineage), disabled again (guards
   compiled in, store off, arena reset). The gate compares min times:
   disabled / baseline must stay within 5%, i.e. recording must be
   strictly pay-for-use — flipping it on and off may not leave residual
   cost in the hot paths. Results go to BENCH_provenance.json; a
   breach exits non-zero so CI fails. *)
let provenance_gate () =
  let a, b = baseline_pair in
  let workload () = ignore (Erm.Ops.union a b) in
  let batch () =
    workload ();
    (* warm-up *)
    let t0 = Unix.gettimeofday () in
    let rec go n =
      workload ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < 0.05 && n < 1000 then go (n + 1) else dt /. float_of_int n *. 1e9
    in
    go 1
  in
  let time_leg () =
    List.fold_left
      (fun acc _ -> Float.min acc (batch ()))
      Float.max_float [ 1; 2; 3; 4; 5 ]
  in
  Obs.Provenance.disable ();
  Obs.Provenance.reset ();
  let baseline_ns = time_leg () in
  Obs.Provenance.enable ();
  Obs.Provenance.reset ();
  let enabled_ns = time_leg () in
  let nodes = Obs.Provenance.count () in
  Obs.Provenance.disable ();
  Obs.Provenance.reset ();
  let disabled_ns = time_leg () in
  let ratio = disabled_ns /. baseline_ns in
  let pass = ratio <= 1.05 in
  print_endline "provenance-gate (union-1000, min of 5 batches):";
  Printf.printf "  baseline (never enabled)  %12.0f ns/run\n" baseline_ns;
  Printf.printf "  enabled  (%8d nodes)  %12.0f ns/run\n" nodes enabled_ns;
  Printf.printf "  disabled (after reset)    %12.0f ns/run\n" disabled_ns;
  Printf.printf "  disabled/baseline ratio   %.3f (gate: <= 1.05) %s\n%!"
    ratio
    (if pass then "OK" else "FAIL");
  let oc = open_out "BENCH_provenance.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"union-1000\",\n\
    \  \"baseline_ns\": %.0f,\n\
    \  \"enabled_ns\": %.0f,\n\
    \  \"disabled_ns\": %.0f,\n\
    \  \"enabled_nodes\": %d,\n\
    \  \"disabled_over_baseline\": %.4f,\n\
    \  \"gate\": 1.05,\n\
    \  \"pass\": %b\n\
     }\n"
    baseline_ns enabled_ns disabled_ns nodes ratio pass;
  close_out oc;
  print_endline "  wrote BENCH_provenance.json\n";
  if not pass then begin
    print_endline
      "  PROVENANCE GATE FAILED - disabled evaluation regressed > 5%";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Sharded-engine overhead gate                                        *)

(* The Sharded strategy with shards = 1 must cost the same as the plain
   physical executor — the engine stands aside entirely below two
   shards, so routing everything through the strategy seam has to be
   free. Gate: min times within 5%. The 4-shard single-worker ratio is
   reported as information (partitioning + merge cost, paid back only
   when workers parallelise). Results go to BENCH_sharded_gate.json; a
   breach exits non-zero so CI fails. *)
let sharded_gate () =
  let a, b = baseline_pair in
  let env = [ ("ua", a); ("ub", b) ] in
  let q = Query.Parser.parse "ua UNION ub" in
  let strategy_ns strategy =
    let batch () =
      let ctx = Query.Physical.create_ctx () in
      ignore (Query.Physical.eval_fast ~ctx ?strategy env q);
      (* warm-up *)
      let t0 = Unix.gettimeofday () in
      let rec go n =
        ignore (Query.Physical.eval_fast ~ctx ?strategy env q);
        let dt = Unix.gettimeofday () -. t0 in
        if dt < 0.05 && n < 1000 then go (n + 1)
        else dt /. float_of_int n *. 1e9
      in
      go 1
    in
    List.fold_left
      (fun acc _ -> Float.min acc (batch ()))
      Float.max_float [ 1; 2; 3; 4; 5 ]
  in
  let inline_ns = strategy_ns None in
  let sharded1_ns =
    strategy_ns
      (Some (Query.Physical.Sharded { Query.Physical.shards = 1; domains = 1 }))
  in
  let sharded4_ns =
    strategy_ns
      (Some (Query.Physical.Sharded { Query.Physical.shards = 4; domains = 1 }))
  in
  let ratio = sharded1_ns /. inline_ns in
  let pass = ratio <= 1.05 in
  print_endline "sharded-gate (union-1000, min of 5 batches):";
  Printf.printf "  inline physical           %12.0f ns/run\n" inline_ns;
  Printf.printf "  sharded shards=1          %12.0f ns/run\n" sharded1_ns;
  Printf.printf "  sharded shards=4 (1 wkr)  %12.0f ns/run (info: %.3fx)\n"
    sharded4_ns (sharded4_ns /. inline_ns);
  Printf.printf "  sharded1/inline ratio     %.3f (gate: <= 1.05) %s\n%!"
    ratio
    (if pass then "OK" else "FAIL");
  let oc = open_out "BENCH_sharded_gate.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"union-1000\",\n\
    \  \"inline_ns\": %.0f,\n\
    \  \"sharded1_ns\": %.0f,\n\
    \  \"sharded4_ns\": %.0f,\n\
    \  \"sharded1_over_inline\": %.4f,\n\
    \  \"gate\": 1.05,\n\
    \  \"pass\": %b\n\
     }\n"
    inline_ns sharded1_ns sharded4_ns ratio pass;
  close_out oc;
  print_endline "  wrote BENCH_sharded_gate.json\n";
  if not pass then begin
    print_endline
      "  SHARDED GATE FAILED - single-shard strategy regressed > 5% over \
       the inline executor";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Incremental absorption vs full rebuild                              *)

(* The store's delta path folds one source update into the merged
   relation in O(changed entities) — Dempster's rule is associative, so
   the fold is bit-identical to rebuilding from scratch. This sweep
   quantifies what that buys: full rebuild vs Multi.absorb_delta at
   1%/10%/50% changed entities over 10^4..10^6-tuple relations.
   Results go to stdout and BENCH_incremental.json. *)
let incremental_sweep () =
  let schema = Workload.Gen.schema "inc" in
  print_endline "incremental absorption vs full rebuild:";
  let points = ref [] in
  List.iter
    (fun n ->
      let base =
        Workload.Gen.relation (Workload.Rng.create 42) ~size:n schema
      in
      List.iter
        (fun frac ->
          let k = max 1 (int_of_float (float_of_int n *. frac)) in
          let changed =
            Erm.Relation.of_tuples schema
              (List.filteri (fun i _ -> i < k) (Erm.Relation.tuples base))
          in
          let delta =
            Workload.Gen.reobserve (Workload.Rng.create (n + k)) changed
          in
          let src =
            { Integration.Multi.source_name = "d"; source_relation = delta }
          in
          let time f =
            let reps = if n <= 10_000 then 5 else 1 in
            let best = ref Float.max_float in
            for _ = 1 to 3 do
              let t0 = Unix.gettimeofday () in
              for _ = 1 to reps do
                f ()
              done;
              best :=
                Float.min !best
                  ((Unix.gettimeofday () -. t0) /. float_of_int reps)
            done;
            !best *. 1e9
          in
          let full_ns =
            time (fun () ->
                ignore
                  (Integration.Multi.integrate
                     [ { Integration.Multi.source_name = "m";
                         source_relation = base };
                       src ]))
          in
          let delta_ns =
            time (fun () ->
                ignore (Integration.Multi.absorb_delta ~into:base src))
          in
          Printf.printf
            "  n=%-8d changed=%-7d full %12.0f ns  delta %12.0f ns  \
             speedup %6.1fx\n\
             %!"
            n k full_ns delta_ns (full_ns /. delta_ns);
          points := (n, k, full_ns, delta_ns) :: !points)
        [ 0.01; 0.1; 0.5 ])
    [ 10_000; 100_000; 1_000_000 ];
  let oc = open_out "BENCH_incremental.json" in
  Printf.fprintf oc "{\n  \"workload\": \"delta-vs-full\",\n  \"points\": [\n";
  let rows = List.rev !points in
  List.iteri
    (fun i (n, k, full_ns, delta_ns) ->
      Printf.fprintf oc
        "    { \"n\": %d, \"changed\": %d, \"full_ns\": %.0f, \
         \"delta_ns\": %.0f, \"speedup\": %.1f }%s\n"
        n k full_ns delta_ns (full_ns /. delta_ns)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  print_endline "  wrote BENCH_incremental.json\n"

(* ------------------------------------------------------------------ *)
(* Store recovery overhead gate                                        *)

(* Opening a clean store always replays every committed record; with
   verification on it additionally CRC-checks each record and re-checks
   each upsert's key digest. The gate bounds what that integrity
   checking may cost on the clean-store fast path: verified open within
   5% of unverified open (min of 5 each, warm cache). Results go to
   BENCH_store_gate.json; a breach exits non-zero so CI fails. *)
let store_gate () =
  let schema = Workload.Gen.schema "gate" in
  let r = Workload.Gen.relation (Workload.Rng.create 11) ~size:10_000 schema in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "eridb_bench_store_%d" (Unix.getpid ()))
  in
  ignore (Store.Estore.create ~dir ~name:"gate" r);
  let time_open ~verify =
    ignore (Store.Estore.open_store ~verify dir);
    (* warm-up *)
    List.fold_left
      (fun acc _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Store.Estore.open_store ~verify dir);
        Float.min acc ((Unix.gettimeofday () -. t0) *. 1e9))
      Float.max_float [ 1; 2; 3; 4; 5 ]
  in
  let unverified_ns = time_open ~verify:false in
  let verified_ns = time_open ~verify:true in
  let ratio = verified_ns /. unverified_ns in
  let pass = ratio <= 1.05 in
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Sys.rmdir dir;
  print_endline "store-gate (open 10k-tuple store, min of 5):";
  Printf.printf "  unverified open           %12.0f ns/run\n" unverified_ns;
  Printf.printf "  verified open             %12.0f ns/run\n" verified_ns;
  Printf.printf "  verified/unverified       %.3f (gate: <= 1.05) %s\n%!"
    ratio
    (if pass then "OK" else "FAIL");
  let oc = open_out "BENCH_store_gate.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"open-10k\",\n\
    \  \"unverified_ns\": %.0f,\n\
    \  \"verified_ns\": %.0f,\n\
    \  \"verified_over_unverified\": %.4f,\n\
    \  \"gate\": 1.05,\n\
    \  \"pass\": %b\n\
     }\n"
    unverified_ns verified_ns ratio pass;
  close_out oc;
  print_endline "  wrote BENCH_store_gate.json\n";
  if not pass then begin
    print_endline
      "  STORE GATE FAILED - verified clean-store recovery regressed > 5% \
       over unverified open";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Whole-store sweep gate                                              *)

(* The S-check sweep is a batch job, but it must stay a *feasible*
   batch job: the gate builds a 100k-tuple store, runs the full
   catalog sweep under the metrics registry, and fails unless the
   sweep completes and every analysis.sweep.* counter is populated
   with the expected workload shape (1 run x |checks| checks x 100k
   tuples). Results go to BENCH_sweep_gate.json. *)
let sweep_gate () =
  let size = 100_000 in
  let schema = Workload.Gen.schema "gate" in
  let r = Workload.Gen.relation (Workload.Rng.create 17) ~size schema in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "eridb_bench_sweep_%d" (Unix.getpid ()))
  in
  ignore (Store.Estore.create ~dir ~name:"gate" r);
  let store, _report = Store.Estore.open_store dir in
  let env = [ ("gate", r) ] in
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  let diags = Analysis.Sweep.run (Analysis.Sweep.subject ~store env) in
  let sweep_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let counter name = Obs.Metrics.counter ("analysis.sweep." ^ name) in
  let runs = counter "runs"
  and checks = counter "checks"
  and relations = counter "relations"
  and tuples = counter "tuples"
  and findings = counter "findings" in
  Obs.Metrics.disable ();
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Sys.rmdir dir;
  let n_checks = List.length Analysis.Sweep.checks in
  let pass =
    runs = 1 && checks = n_checks && relations = 1 && tuples = size
    && findings = List.length diags
  in
  Printf.printf "sweep-gate (S-check sweep over a %dk-tuple store):\n"
    (size / 1000);
  Printf.printf "  sweep                     %12.0f ns  (%.1f ktuple/s)\n"
    sweep_ns
    (float_of_int size /. sweep_ns *. 1e6);
  Printf.printf
    "  metrics: runs=%d checks=%d relations=%d tuples=%d findings=%d %s\n%!"
    runs checks relations tuples findings
    (if pass then "OK" else "FAIL");
  let oc = open_out "BENCH_sweep_gate.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"sweep-100k\",\n\
    \  \"sweep_ns\": %.0f,\n\
    \  \"tuples\": %d,\n\
    \  \"checks\": %d,\n\
    \  \"findings\": %d,\n\
    \  \"pass\": %b\n\
     }\n"
    sweep_ns tuples checks findings pass;
  close_out oc;
  print_endline "  wrote BENCH_sweep_gate.json\n";
  if not pass then begin
    print_endline
      "  SWEEP GATE FAILED - analysis.sweep.* metrics did not reflect the \
       workload";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Observability overhead gate                                         *)

(* Telemetry must be strictly pay-for-use: after a fully-instrumented
   run (metrics + tracing + flight recorder over the 4-shard/4-worker
   engine), turning everything off again has to leave the hot paths at
   their never-observed cost — the guards are one boolean load each.
   Gate: disabled/baseline min times within 5%. The enabled leg also
   proves the clamp is gone: with metrics recording, domains = 4 must
   still run 4 workers (the exec.workers gauge says what the pool
   actually did). Results go to BENCH_obs.json; a breach exits non-zero
   so CI fails. *)
let obs_gate () =
  let a, b = baseline_pair in
  let env = [ ("ua", a); ("ub", b) ] in
  let q = Query.Parser.parse "ua UNION ub" in
  let strategy =
    Some (Query.Physical.Sharded { Query.Physical.shards = 4; domains = 4 })
  in
  let workload ctx () = ignore (Query.Physical.eval_fast ~ctx ?strategy env q) in
  let time_leg () =
    let ctx = Query.Physical.create_ctx () in
    (* A parallel run is tens of milliseconds with real scheduler
       jitter, so batches are long (several runs each) and the min is
       taken over more of them than the single-threaded gates need. *)
    let batch () =
      workload ctx ();
      (* warm-up *)
      let t0 = Unix.gettimeofday () in
      let rec go n =
        workload ctx ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < 0.3 && n < 1000 then go (n + 1) else dt /. float_of_int n *. 1e9
      in
      go 1
    in
    List.fold_left
      (fun acc _ -> Float.min acc (batch ()))
      Float.max_float [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  let baseline_ns = time_leg () in
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Obs.Trace.set_clock Obs.Trace.default (Obs.Clock.simulated ());
  Obs.Trace.enable Obs.Trace.default;
  Obs.Log.set_clock (Obs.Clock.simulated ());
  Obs.Log.enable ();
  let enabled_ns = time_leg () in
  let workers =
    match Obs.Metrics.last "exec.workers" with
    | Some w -> int_of_float w
    | None -> 0
  in
  let events = List.length (Obs.Log.events ()) in
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  Obs.Trace.disable Obs.Trace.default;
  Obs.Trace.clear Obs.Trace.default;
  Obs.Log.disable ();
  Obs.Log.clear ();
  let disabled_ns = time_leg () in
  let ratio = disabled_ns /. baseline_ns in
  let workers_ok = workers = 4 in
  let pass = ratio <= 1.05 && workers_ok in
  print_endline "obs-gate (sharded union-1000, shards=4 domains=4, min of 8):";
  Printf.printf "  baseline (never observed) %12.0f ns/run\n" baseline_ns;
  Printf.printf "  enabled  (m+t+log)        %12.0f ns/run (%d events)\n"
    enabled_ns events;
  Printf.printf "  disabled (after reset)    %12.0f ns/run\n" disabled_ns;
  Printf.printf "  workers with metrics on   %d (gate: = 4) %s\n" workers
    (if workers_ok then "OK" else "FAIL");
  Printf.printf "  disabled/baseline ratio   %.3f (gate: <= 1.05) %s\n%!"
    ratio
    (if ratio <= 1.05 then "OK" else "FAIL");
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"sharded-union-1000\",\n\
    \  \"shards\": 4,\n\
    \  \"domains\": 4,\n\
    \  \"baseline_ns\": %.0f,\n\
    \  \"enabled_ns\": %.0f,\n\
    \  \"disabled_ns\": %.0f,\n\
    \  \"workers_with_metrics\": %d,\n\
    \  \"flight_events\": %d,\n\
    \  \"disabled_over_baseline\": %.4f,\n\
    \  \"gate\": 1.05,\n\
    \  \"pass\": %b\n\
     }\n"
    baseline_ns enabled_ns disabled_ns workers events ratio pass;
  close_out oc;
  print_endline "  wrote BENCH_obs.json\n";
  if not pass then begin
    if not workers_ok then
      print_endline
        "  OBS GATE FAILED - metrics recording did not run 4 workers at \
         domains=4";
    if ratio > 1.05 then
      print_endline
        "  OBS GATE FAILED - disabled observability regressed > 5% over the \
         never-observed baseline";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Combination-rule policy-seam gate                                   *)

(* Every merge path now routes combinations through the κ-escalation
   seam (Mass.F.combine_policy) instead of calling the raw Dempster
   kernel directly. The gate times both over the same evidence pool and
   bounds what the default dempster-no-escalation policy may cost: the
   policy check is two field reads, so the seam must stay within 5% of
   the raw kernel. Results go to BENCH_rules_gate.json; a breach exits
   non-zero so CI fails. *)
let rules_gate () =
  let dom = Workload.Gen.domain ~size:8 "rulesgate" in
  let pairs =
    Array.init 200 (fun i ->
        let prng = Workload.Rng.create (1000 + i) in
        ( Workload.Gen.evidence prng ~omega_floor:0.05 dom,
          Workload.Gen.evidence prng ~omega_floor:0.05 dom ))
  in
  let raw () =
    Array.iter (fun (a, b) -> ignore (Dst.Mass.F.combine_opt a b)) pairs
  in
  let seam () =
    Array.iter
      (fun (a, b) ->
        ignore
          (Dst.Mass.F.combine_policy ~policy:Dst.Rule.dempster a b))
      pairs
  in
  let batch workload =
    workload ();
    (* warm-up *)
    let t0 = Unix.gettimeofday () in
    let rec go n =
      workload ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < 0.05 && n < 1000 then go (n + 1) else dt /. float_of_int n *. 1e9
    in
    go 1
  in
  let time_leg workload =
    List.fold_left
      (fun acc _ -> Float.min acc (batch workload))
      Float.max_float [ 1; 2; 3; 4; 5 ]
  in
  let raw_ns = time_leg raw in
  let seam_ns = time_leg seam in
  let ratio = seam_ns /. raw_ns in
  let pass = ratio <= 1.05 in
  print_endline "rules-gate (combine-200, min of 5 batches):";
  Printf.printf "  raw dempster kernel       %12.0f ns/run\n" raw_ns;
  Printf.printf "  policy seam (default)     %12.0f ns/run\n" seam_ns;
  Printf.printf "  seam/raw ratio            %.3f (gate: <= 1.05) %s\n%!"
    ratio
    (if pass then "OK" else "FAIL");
  let oc = open_out "BENCH_rules_gate.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"combine-200\",\n\
    \  \"raw_ns\": %.0f,\n\
    \  \"seam_ns\": %.0f,\n\
    \  \"seam_over_raw\": %.4f,\n\
    \  \"gate\": 1.05,\n\
    \  \"pass\": %b\n\
     }\n"
    raw_ns seam_ns ratio pass;
  close_out oc;
  print_endline "  wrote BENCH_rules_gate.json\n";
  if not pass then begin
    print_endline "  RULES GATE FAILED - policy seam regressed dempster > 5%";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Rule quality sweep over the adversarial scenario corpus             *)

(* Not a timing benchmark: a decision aid. Each rule (and a
   quarantining escalation policy) integrates the same
   adversarially-conflicting source pairs — Zadeh, near-total,
   one-against-many, dissenter, 50 rows each — and is scored on
   entity loss (fraction of rows dropped to total conflict or
   quarantine) and support gap (mean Pls - Bel of the best-supported
   hypothesis: how undecided the merged evidence stays). Dempster
   loses nothing but feigns certainty; quarantine trades rows for
   honesty; Yager keeps rows maximally undecided. Deterministic: fixed
   seeds. Results go to stdout and BENCH_rules.json. *)
let rules_quality_sweep () =
  let dom = Workload.Gen.domain ~size:8 "rulesq" in
  let rows = 50 in
  let policies =
    List.map
      (fun rule -> (Dst.Rule.to_string rule, Dst.Rule.make rule))
      (Dst.Rule.all @ [ Dst.Rule.discount_then_combine 0.9 ])
    @ [ ( "dempster->quarantine@0.9",
          Dst.Rule.make
            ~escalation:(Dst.Rule.escalate ~kappa0:0.9 Dst.Rule.Quarantine)
            Dst.Rule.Dempster );
        ( "dempster->yager@0.9",
          Dst.Rule.make
            ~escalation:
              (Dst.Rule.escalate ~kappa0:0.9
                 (Dst.Rule.Fallback Dst.Rule.Yager))
            Dst.Rule.Dempster ) ]
  in
  let singletons =
    List.map
      (fun v -> Dst.Vset.of_list [ v ])
      (Dst.Vset.to_list (Dst.Domain.values dom))
  in
  (* Mean over evidence cells of Pls - Bel on the best (max-Bel)
     singleton: 0 = decided, 1 = total ignorance about the winner. *)
  let support_gap rel =
    let total, n =
      List.fold_left
        (fun (total, n) t ->
          List.fold_left
            (fun (total, n) cell ->
              match cell with
              | Erm.Etuple.Definite _ -> (total, n)
              | Erm.Etuple.Evidence e ->
                  let best =
                    List.fold_left
                      (fun best s ->
                        if Dst.Mass.F.bel e s > Dst.Mass.F.bel e best then s
                        else best)
                      (List.hd singletons) singletons
                  in
                  ( total +. (Dst.Mass.F.pls e best -. Dst.Mass.F.bel e best),
                    n + 1 ))
            (total, n) (Erm.Etuple.cells t))
        (0.0, 0) (Erm.Relation.tuples rel)
    in
    if n = 0 then 0.0 else total /. float_of_int n
  in
  let score policy kind =
    let prng = Workload.Rng.create 424242 in
    let l, r = Workload.Scenario.source_pair prng ~rows kind dom in
    let merged, conflicts = Erm.Ops.union_report ~policy l r in
    let quarantined =
      List.length (List.filter Erm.Ops.is_quarantine conflicts)
    in
    let lost = rows - Erm.Relation.cardinal merged in
    ( float_of_int lost /. float_of_int rows,
      support_gap merged,
      quarantined )
  in
  print_endline "rules (entity loss / support gap over the conflict corpus):";
  Printf.printf "  %-26s" "";
  List.iter
    (fun kind -> Printf.printf " %16s" (Workload.Scenario.kind_name kind))
    Workload.Scenario.all_kinds;
  print_newline ();
  let rule_rows =
    List.map
      (fun (name, policy) ->
        let cells =
          List.map
            (fun kind ->
              let loss, gap, quarantined = score policy kind in
              (kind, loss, gap, quarantined))
            Workload.Scenario.all_kinds
        in
        Printf.printf "  %-26s" name;
        List.iter
          (fun (_, loss, gap, _) -> Printf.printf "  %5.2f / %6.4f" loss gap)
          cells;
        print_newline ();
        (name, cells))
      policies
  in
  print_newline ();
  let oc = open_out "BENCH_rules.json" in
  Printf.fprintf oc "{\n  \"rows_per_kind\": %d,\n  \"rules\": [\n" rows;
  List.iteri
    (fun i (name, cells) ->
      Printf.fprintf oc "    { \"rule\": \"%s\", \"kinds\": [\n" name;
      List.iteri
        (fun j (kind, loss, gap, quarantined) ->
          Printf.fprintf oc
            "      { \"kind\": \"%s\", \"entity_loss\": %.4f, \
             \"support_gap\": %.6f, \"quarantined\": %d }%s\n"
            (Workload.Scenario.kind_name kind)
            loss gap quarantined
            (if j = List.length cells - 1 then "" else ","))
        cells;
      Printf.fprintf oc "    ] }%s\n"
        (if i = List.length rule_rows - 1 then "" else ","))
    rule_rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  print_endline "  wrote BENCH_rules.json\n"

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)

let run_group (group_name, tests) =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let grouped = Test.make_grouped ~name:group_name tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%s:\n" group_name;
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ ns ] -> Printf.printf "  %-42s %12.1f ns/run\n" name ns
         | Some _ | None -> Printf.printf "  %-42s (no estimate)\n" name);
  print_newline ()

let () =
  Exec.Engine.install ();
  if Array.exists (String.equal "--provenance-gate") Sys.argv then begin
    (* CI mode: only the overhead gate, so the job stays fast. *)
    provenance_gate ();
    exit 0
  end;
  if Array.exists (String.equal "--sharded-gate") Sys.argv then begin
    (* CI mode: only the strategy-seam overhead gate. *)
    sharded_gate ();
    exit 0
  end;
  if Array.exists (String.equal "--store-gate") Sys.argv then begin
    (* CI mode: only the store recovery overhead gate. *)
    store_gate ();
    exit 0
  end;
  if Array.exists (String.equal "--sweep-gate") Sys.argv then begin
    (* CI mode: only the whole-store sweep feasibility gate. *)
    sweep_gate ();
    exit 0
  end;
  if Array.exists (String.equal "--rules-gate") Sys.argv then begin
    (* CI mode: only the combination-policy seam gate. *)
    rules_gate ();
    exit 0
  end;
  if Array.exists (String.equal "--obs-gate") Sys.argv then begin
    (* CI mode: only the observability overhead + worker-clamp gate. *)
    obs_gate ();
    exit 0
  end;
  if Array.exists (String.equal "--rules") Sys.argv then begin
    (* Just the rule quality sweep (regenerates BENCH_rules.json). *)
    rules_quality_sweep ();
    exit 0
  end;
  if Array.exists (String.equal "--join-scaling") Sys.argv then begin
    (* Just the join/kernel sweep (regenerates BENCH_join.json). *)
    join_scaling ();
    exit 0
  end;
  if Array.exists (String.equal "--incremental") Sys.argv then begin
    (* Just the delta-vs-full sweep (regenerates BENCH_incremental.json). *)
    incremental_sweep ();
    exit 0
  end;
  print_endline "verifying artifacts against the paper:";
  verify ();
  federation_fault_sweep ();
  join_scaling ();
  incremental_sweep ();
  provenance_gate ();
  sharded_gate ();
  store_gate ();
  rules_gate ();
  obs_gate ();
  rules_quality_sweep ();
  List.iter run_group
    [ ("paper-artifacts", artifact_tests);
      ("combination-scaling", combine_sweep);
      ("combination-rules", rules_sweep);
      ("selection-scaling", select_sweep);
      ("union-scaling", union_sweep);
      ("product-join", join_tests);
      ("baselines", baseline_tests);
      ("query-processing", query_tests);
      ("support-pairs", support_tests);
      ("federated-strategies", federated_tests);
      ("ablations", ablation_tests) ]
