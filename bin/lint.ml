(* eridb-lint — static checks for .erd files and eridb queries.

     eridb-lint data/restaurants.erd examples/*.erd
     eridb-lint --json broken.erd
     eridb-lint --queries examples/queries.txt data/restaurants.erd

   Lints every named .erd file without loading it into the runtime
   (Analysis.Erd_lint); with --queries, additionally loads the .erd
   files and runs the plan checker (Analysis.Check) over each
   non-comment line of the query file.

   Exit codes: 0 clean, 1 warnings only, 2 errors, 124 usage error. *)

open Cmdliner

let lint_queries ~files ~queries_file =
  match
    List.concat_map
      (fun path ->
        List.map
          (fun r -> (Erm.Schema.name (Erm.Relation.schema r), r))
          (Erm.Io.load path))
      files
  with
  | exception Erm.Io.Io_error { line; col; message } ->
      [ Analysis.Diagnostic.error ~line ~col ~code:"Q001" "%s" message ]
  | exception Sys_error m ->
      [ Analysis.Diagnostic.error ~code:"Q001" "%s" m ]
  | env -> (
      match
        let ic = open_in queries_file in
        let n = in_channel_length ic in
        let content = really_input_string ic n in
        close_in ic;
        content
      with
      | exception Sys_error m ->
          [ Analysis.Diagnostic.error ~file:queries_file ~code:"E017"
              "cannot read file: %s" m ]
      | content ->
          String.split_on_char '\n' content
          |> List.mapi (fun i l -> (i + 1, String.trim l))
          |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
          |> List.concat_map (fun (lineno, l) ->
                 List.map
                   (fun d ->
                     (* The checker positions findings within the query
                        text; re-anchor them to the corpus line. *)
                     { d with Analysis.Diagnostic.line = lineno; col = 0 })
                   (Analysis.Check.check_string ~file:queries_file env l)))

let run json queries files =
  let erd_diags = List.concat_map Analysis.Erd_lint.lint_file files in
  let query_diags =
    match queries with
    | None -> []
    | Some qf -> lint_queries ~files ~queries_file:qf
  in
  let diags = erd_diags @ query_diags in
  if json then print_string (Analysis.Report.to_json diags ^ "\n")
  else Analysis.Report.print diags;
  Analysis.Report.exit_code diags

let files_arg =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"FILE" ~doc:"The $(b,.erd) files to lint.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the diagnostics as a JSON array instead of text.")

let queries_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "queries" ] ~docv:"FILE"
        ~doc:
          "Also load the $(b,.erd) files and run the static plan checker \
           over each non-comment line of $(docv).")

let cmd =
  let doc = "statically check .erd relation files and eridb queries" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Validates evidential relation files without loading them: mass \
         normalization, no mass on the empty set, values within declared \
         domains, key uniqueness, and CWA_ER admissibility ($(b,sn > 0)), \
         with file:line:col positions. With $(b,--queries) it also runs \
         the abstract-interpretation plan checker over a query corpus.";
      `S Manpage.s_exit_status;
      `P "0 on a clean run, 1 when the worst finding is a warning, 2 when \
          any error is found." ]
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"on warnings."
    :: Cmd.Exit.info 2 ~doc:"on errors."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "eridb-lint" ~version:"1.0" ~doc ~man ~exits)
    Term.(const run $ json_arg $ queries_arg $ files_arg)

let () = exit (Cmd.eval' cmd)
