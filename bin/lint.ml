(* eridb-lint — static checks for .erd files, eridb queries and stores.

     eridb-lint data/restaurants.erd examples/*.erd
     eridb-lint --json broken.erd
     eridb-lint --queries examples/queries.txt data/restaurants.erd
     eridb-lint --list-checks
     eridb-lint --sweep STORE --delta feed.erd --min-priority Medium

   Lints every named .erd file without loading it into the runtime
   (Analysis.Erd_lint); with --queries, additionally loads the .erd
   files and runs the plan checker (Analysis.Check) over each
   non-comment line of the query file. With --sweep, opens a store (an
   Estore directory or a .erd catalog directory) and runs the
   whole-store S-checks (Analysis.Sweep) over its merged relations;
   each --delta is absorbed in memory only, so the sweep sees the
   merge-conflict telemetry without committing anything.

   Exit codes (file/query mode): 0 clean, 1 warnings only, 2 errors,
   124 usage error. Missing or unreadable files are E017 error
   diagnostics — reported in the selected format (including --json) and
   exiting 2, never a usage error.

   Exit codes (sweep mode): 0 when no finding above Info survives the
   --min-priority filter, 1 when findings are reported, 2 on
   operational errors (unreadable store or delta). *)

open Cmdliner

let lint_queries ~files ~queries_file =
  match
    List.concat_map
      (fun path ->
        List.map
          (fun r -> (Erm.Schema.name (Erm.Relation.schema r), r))
          (Erm.Io.load path))
      files
  with
  | exception Erm.Io.Io_error { line; col; message } ->
      [ Analysis.Diagnostic.error ~line ~col ~code:"Q001" "%s" message ]
  | exception Sys_error m ->
      [ Analysis.Diagnostic.error ~code:"Q001" "%s" m ]
  | env -> (
      match
        let ic = open_in queries_file in
        let n = in_channel_length ic in
        let content = really_input_string ic n in
        close_in ic;
        content
      with
      | exception Sys_error m ->
          [ Analysis.Diagnostic.error ~file:queries_file ~code:"E017"
              "cannot read file: %s" m ]
      | content ->
          String.split_on_char '\n' content
          |> List.mapi (fun i l -> (i + 1, String.trim l))
          |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
          |> List.concat_map (fun (lineno, l) ->
                 List.map
                   (fun d ->
                     (* The checker positions findings within the query
                        text; re-anchor them to the corpus line. *)
                     { d with Analysis.Diagnostic.line = lineno; col = 0 })
                   (Analysis.Check.check_string ~file:queries_file env l)))

let emit ~json diags =
  if json then print_string (Analysis.Report.to_json diags ^ "\n")
  else Analysis.Report.print diags

let run_lint ~json ~queries files =
  let erd_diags = List.concat_map Analysis.Erd_lint.lint_file files in
  let query_diags =
    match queries with
    | None -> []
    | Some qf -> lint_queries ~files ~queries_file:qf
  in
  let diags = erd_diags @ query_diags in
  emit ~json diags;
  Analysis.Report.exit_code diags

(* ------------------------------------------------------------------ *)
(* Store sweeps                                                        *)

exception Sweep_failed of string

let open_subject dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    raise (Sweep_failed (Printf.sprintf "%s: no such store directory" dir));
  if Sys.file_exists (Filename.concat dir "CATALOG") then
    match Store.Catalog.load dir with
    | catalog -> (Store.Catalog.env catalog, None)
    | exception Store.Catalog.Catalog_error m ->
        raise (Sweep_failed (Printf.sprintf "%s: %s" dir m))
    | exception Sys_error m -> raise (Sweep_failed m)
  else
    match Store.Estore.open_store dir with
    | t, _report -> ([ (Store.Estore.name t, Store.Estore.relation t) ], Some t)
    | exception Store.Recovery.Store_error e ->
        raise
          (Sweep_failed
             (Printf.sprintf "%s: %s" dir (Store.Recovery.error_to_string e)))

(* In-memory absorption: the sweep needs the κ rollups and provenance
   Step ranges a real absorption records, but must not commit — a lint
   never mutates what it checks. *)
let absorb_delta env path =
  let rel =
    match Erm.Io.load path with
    | [ r ] -> r
    | _ ->
        raise
          (Sweep_failed
             (Printf.sprintf "%s: delta file must hold exactly one relation"
                path))
    | exception Erm.Io.Io_error { line; message; _ } ->
        raise (Sweep_failed (Printf.sprintf "%s:%d: %s" path line message))
    | exception Sys_error m -> raise (Sweep_failed m)
  in
  let source = Erm.Schema.name (Erm.Relation.schema rel) in
  let compatible (_, r) =
    Erm.Schema.union_compatible (Erm.Relation.schema r)
      (Erm.Relation.schema rel)
  in
  match List.find_opt compatible env with
  | None ->
      raise
        (Sweep_failed
           (Printf.sprintf "%s: delta %s is union-compatible with no swept \
                            relation"
              path source))
  | Some (name, into) -> (
      match
        Integration.Multi.absorb_delta ~into
          { Integration.Multi.source_name = source; source_relation = rel }
      with
      | merged, _conflicts, _changes ->
          List.map
            (fun (n, r) -> if String.equal n name then (n, merged) else (n, r))
            env
      | exception Dst.Mass.F.Total_conflict ->
          raise
            (Sweep_failed
               (Printf.sprintf "%s: total conflict absorbing %s" path source))
      | exception Erm.Ops.Incompatible_schemas m -> raise (Sweep_failed m))

let run_sweep ~json ~min_priority dir deltas =
  (* The S004/S005 telemetry comes from the ambient metrics registry
     and provenance arena; recording must be on before any delta is
     absorbed. *)
  Obs.Metrics.enable ();
  Obs.Provenance.enable ();
  match
    let env, store = open_subject dir in
    let env = List.fold_left absorb_delta env deltas in
    Analysis.Sweep.run (Analysis.Sweep.subject ?store env)
  with
  | exception Sweep_failed m ->
      if json then
        Printf.printf "{\"error\": \"%s\"}\n" (Analysis.Diagnostic.json_escape m)
      else Printf.eprintf "eridb-lint: %s\n" m;
      2
  | diags ->
      let floor = Analysis.Checkdef.priority_rank min_priority in
      let rank d =
        match Analysis.Catalog.priority_for d.Analysis.Diagnostic.code with
        | Some p -> Analysis.Checkdef.priority_rank p
        | None -> -1
      in
      let kept = List.filter (fun d -> rank d >= floor) diags in
      emit ~json kept;
      if List.exists (fun d -> rank d > 0) kept then 1 else 0

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

let run json queries list_checks sweep deltas min_priority flight_out files =
  (match flight_out with
  | Some path ->
      (* Deterministic journal timestamps, and a flush that runs on
         every exit path — including the error exits (2/124). *)
      Obs.Metrics.enable ();
      Obs.Log.set_clock (Obs.Clock.simulated ());
      Obs.Log.enable ();
      Obs.Export.on_exit_flush (fun () -> Obs.Export.write_flight path)
  | None -> ());
  if list_checks then begin
    print_string
      (if json then Analysis.Catalog.to_json () ^ "\n"
       else Analysis.Catalog.to_tsv ());
    0
  end
  else
    match sweep with
    | Some dir -> run_sweep ~json ~min_priority dir deltas
    | None ->
        if files = [] then begin
          prerr_endline
            "eridb-lint: no .erd files given (and neither --sweep nor \
             --list-checks)";
          124
        end
        else run_lint ~json ~queries files

let priority_conv =
  let parse s =
    match Analysis.Checkdef.priority_of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "invalid priority %S (expected Blocker, High, Medium, Low or \
                 Info)"
                s))
  in
  Arg.conv
    (parse, fun ppf p ->
      Format.pp_print_string ppf (Analysis.Checkdef.priority_to_string p))

(* Positional and --queries arguments are plain strings, not
   Arg.file: a missing path must surface as an E017 diagnostic in the
   selected output format with exit 2, not as a usage error. *)
let files_arg =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"FILE" ~doc:"The $(b,.erd) files to lint.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the diagnostics as a JSON array instead of text.")

let queries_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "queries" ] ~docv:"FILE"
        ~doc:
          "Also load the $(b,.erd) files and run the static plan checker \
           over each non-comment line of $(docv). An empty corpus is a \
           no-op.")

let list_checks_arg =
  Arg.(
    value & flag
    & info [ "list-checks" ]
        ~doc:
          "Print the data-quality check catalog (code, display name, \
           priority, description) as a TSV table — or JSON with \
           $(b,--json) — and exit.")

let sweep_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sweep" ] ~docv:"STORE"
        ~doc:
          "Run the whole-store S-checks over $(docv): an evidence store \
           directory, or a catalog directory of $(b,.erd) relations.")

let delta_arg =
  Arg.(
    value & opt_all string []
    & info [ "delta" ] ~docv:"FILE"
        ~doc:
          "With $(b,--sweep), absorb the single-relation $(b,.erd) delta \
           in memory (never committed) before sweeping, so per-source \
           conflict telemetry is populated. Repeatable.")

let flight_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-out" ] ~docv:"FILE"
        ~doc:
          "Enable the flight recorder and write its event journal plus a \
           metrics snapshot to $(docv) as JSONL on exit — including error \
           exits. Sweeps over a recovering store journal the recovery \
           anomalies it repaired.")

let min_priority_arg =
  Arg.(
    value
    & opt priority_conv Analysis.Checkdef.Info
    & info [ "min-priority" ] ~docv:"PRIORITY"
        ~doc:
          "With $(b,--sweep), report only findings at or above $(docv) \
           (Blocker, High, Medium, Low, Info; default Info).")

let cmd =
  let doc = "statically check .erd relation files, eridb queries and stores" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Validates evidential relation files without loading them: mass \
         normalization, no mass on the empty set, values within declared \
         domains, key uniqueness, and CWA_ER admissibility ($(b,sn > 0)), \
         with file:line:col positions. With $(b,--queries) it also runs \
         the abstract-interpretation plan checker over a query corpus. \
         With $(b,--sweep) it runs the whole-store checks — dangling \
         cross-relation references, dormant domain values, per-source \
         disagreement, duplicate-entity suspicion, segment hygiene — over \
         an opened store, prioritized Blocker to Info. $(b,--list-checks) \
         prints the full catalog.";
      `S Manpage.s_exit_status;
      `P "0 on a clean run, 1 when the worst finding is a warning (file \
          mode) or any finding above Info is reported (sweep mode), 2 on \
          errors." ]
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"on warnings (file mode) or findings (sweep mode)."
    :: Cmd.Exit.info 2 ~doc:"on errors."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "eridb-lint" ~version:"1.0" ~doc ~man ~exits)
    Term.(
      const run $ json_arg $ queries_arg $ list_checks_arg $ sweep_arg
      $ delta_arg $ min_priority_arg $ flight_out_arg $ files_arg)

let () = exit (Cmd.eval' cmd)
