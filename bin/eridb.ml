(* eridb — an interactive shell over extended relations.

   Usage: eridb [--trace-out FILE] [--provenance-out FILE]
                [--flight-out FILE] [--domains N] [FILE.erd ...]

   Loads the given .erd files into the environment, then reads queries
   (and dot-commands) from stdin. With --trace-out, every span recorded
   during the session is written to FILE as Chrome trace JSON on exit.
   With --provenance-out, lineage recording is enabled and the arena is
   written to FILE on exit (.dot selects Graphviz, anything else JSON).
   With --flight-out, the flight recorder journals typed events and the
   surviving ring plus a metrics snapshot is written to FILE as JSONL on
   exit — including typed error exits, so it doubles as a crash dump.
   With --domains N (or ERIDB_DOMAINS=N; the flag wins), N > 1 routes
   queries through the sharded execution engine with one shard per
   domain — results are bit-identical to the default path by the
   conformance harness's contract, with metrics, tracing and the flight
   recorder running at full parallelism through per-worker buffers.
   ERIDB_CLOCK=virtual replaces the wall clock with a simulated one, so
   all durations are deterministic (0). *)

let usage = {|eridb — evidential extended-relation shell

Usage: eridb [--trace-out FILE] [--provenance-out FILE] [--flight-out FILE]
             [--domains N] [--rule SPEC] [FILE.erd ...]

  --domains N           evaluate queries through the sharded execution
                        engine with N shards/domains (default: the
                        ERIDB_DOMAINS environment variable, else 1 =
                        the classic inline executor)
  --rule SPEC           session combination rule, same spec as .rule
                        (quote multi-word specs: --rule "yager 0.9")

Commands:
  .help                 show this help
  .tables               list loaded relations
  .schema NAME          print a relation's schema
  .show NAME            print a relation
  .load FILE            load relations from an .erd file
  .save NAME FILE       write a relation to an .erd file
  .let NAME = QUERY     evaluate a query and bind the result
  .check QUERY          static analysis: report diagnostics without running
  .sweep                whole-store data-quality sweep (S-checks) over the
                        bound relations and the open store's history
  .strict on|off        refuse to execute queries with error diagnostics
                        (initial state from ERIDB_STRICT=1)
  .rule [RULE [K [FB]]] show or set the session combination rule:
                        dempster | yager | dubois-prade | averaging |
                        discount[:ALPHA], optionally with a κ-threshold
                        K in [0,1] and fallback FB (a rule name, or
                        quarantine = drop and report; the default)
  .plan QUERY           show the optimized query
  .explain QUERY        show the optimized plan tree with row estimates
  .physical QUERY       show the physical plan (access paths, join algorithms)
  .analyze QUERY        run the query, show measured per-operator statistics
  .open DIR             open a catalog directory (loads all relations)
  .commit DIR           write every bound relation into a catalog
  .store open DIR       open a crash-safe evidence store (runs recovery,
                        binds the stored relation)
  .store create DIR NAME  persist a bound relation as a new store
  .store delta FILE     fold a one-relation .erd update into the open
                        store (O(changed entities), appends a segment)
  .store status         version, segments and records of the open store
  .summary NAME         cardinality interval + evidence histograms
  .top NAME K           the K most-supported tuples
  .assess NAME NAME     pairwise conflict profile of two relations
  .diff OLD NEW         per-key change log between two relation versions
  .csv NAME [FILE]      CSV rendering (to FILE, or stdout)
  .trace on|off         record a span tree for each query and print it
                        (bare .trace reports the current state)
  .metrics              dump the metrics registry (counters, gauges,
                        histograms); .metrics reset clears it
  .log on|off|dump      flight recorder: journal typed events (retries,
                        escalations, commits, …) in a bounded ring
                        (bare .log reports the state; .log dump prints
                        the surviving events as JSONL)
  .events [N]           pretty-print the flight recorder's surviving
                        events (the last N with an argument)
  .provenance on|off    record a lineage node for every evidential
                        derivation (bare .provenance reports the state;
                        .provenance reset clears the arena)
  .why KEY [ATTR]       explain a tuple of the last query result: the
                        derivation tree of its membership support, or of
                        attribute ATTR's combined evidence
  .quit                 exit

Anything else is evaluated as a query, e.g.:
  SELECT rname, rating FROM ra WHERE speciality IS {si} WITH SN > 0.5
  ra UNION rb
|}

let env : (string * Erm.Relation.t) list ref = ref []

(* Persistent execution context: indexes built for probes and the
   Dempster memo-cache survive across queries. Index staleness is
   handled inside Physical (physical-equality check per lookup), so
   rebinding a name is safe without invalidation here. *)
let ctx = Query.Physical.create_ctx ()

(* Shard/worker count for the sharded engine; 1 keeps the classic
   inline executor. Set from ERIDB_DOMAINS or --domains at startup. *)
let domains = ref 1

let strategy () =
  if !domains > 1 then
    Query.Physical.Sharded { Query.Physical.shards = !domains; domains = !domains }
  else Query.Physical.Inline

let bind name r = env := (name, r) :: List.remove_assoc name !env

(* Strict mode gates execution on the static checker: plans with
   error-level diagnostics are refused rather than run. *)
let strict =
  ref
    (match Sys.getenv_opt "ERIDB_STRICT" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

let guard env q = if !strict then Analysis.Check.errors env q else []

let load_file path =
  match Erm.Io.load path with
  | relations ->
      List.iter
        (fun r ->
          let name = Erm.Schema.name (Erm.Relation.schema r) in
          bind name r;
          if Obs.Provenance.on () then
            Erm.Lineage.register_relation ~name r;
          Printf.printf "loaded %s (%d tuples)\n" name
            (Erm.Relation.cardinal r))
        relations
  | exception Erm.Io.Io_error { line; col; message } ->
      if col > 0 then Printf.printf "error: %s:%d:%d: %s\n" path line col message
      else Printf.printf "error: %s:%d: %s\n" path line message
  | exception Sys_error m -> Printf.printf "error: %s\n" m

(* The most recent successful query result — what .why explains. *)
let last_result : Erm.Relation.t option ref = ref None

(* The store handle behind .store delta/status. *)
let current_store : Store.Estore.t option ref = ref None

let run_query text =
  let mark = Obs.Trace.count Obs.Trace.default in
  (match Query.Physical.run ~ctx ~guard ~strategy:(strategy ()) !env text with
  | r ->
      last_result := Some r;
      Erm.Render.print ~title:"result" r
  | exception Query.Parser.Parse_error m -> Printf.printf "parse error: %s\n" m
  | exception Query.Physical.Rejected findings ->
      Printf.printf "rejected by the static checker (.strict off to override):\n";
      List.iter (fun f -> Printf.printf "  %s\n" f) findings
  | exception Query.Eval.Eval_error m -> Printf.printf "error: %s\n" m
  | exception Dst.Mass.F.Total_conflict ->
      Printf.printf
        "error: total conflict (kappa = 1) while combining evidence\n"
  | exception Erm.Ops.Incompatible_schemas m -> Printf.printf "error: %s\n" m
  | exception Erm.Etuple.Tuple_error m -> Printf.printf "error: %s\n" m);
  if Obs.Trace.on () then
    match Obs.Trace.forest ~from:mark Obs.Trace.default with
    | [] -> ()
    | trees -> Format.printf "trace:@.%a@." Obs.Trace.pp_forest trees

let split_first s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

(* .why KEY [ATTR]: resolve a tuple of the last result by its printed
   key, then render the derivation tree of the requested value. The κ
   footer is the sum-check against dst.combine.conflict_kappa: over a
   fresh arena + registry, the per-step κ values of all derivation
   trees add up to the histogram's sum. *)
let why_command rest =
  let key_str, attr = split_first rest in
  if key_str = "" then print_string "usage: .why KEY [ATTR]\n"
  else if not (Obs.Provenance.on ()) then
    print_string "provenance is off (.provenance on, then re-run the query)\n"
  else
    match !last_result with
    | None -> print_string "no query result to explain yet\n"
    | Some r -> (
        let tuple =
          Erm.Relation.fold
            (fun t acc ->
              match acc with
              | Some _ -> acc
              | None ->
                  if String.equal (Erm.Lineage.key_string t) key_str then
                    Some t
                  else None)
            r None
        in
        match tuple with
        | None ->
            Printf.printf "no tuple with key (%s) in the last result\n" key_str
        | Some t -> (
            let lookup =
              if attr = "" then Ok (Obs.Provenance.find (Erm.Lineage.tm_digest t))
              else
                match Erm.Etuple.cell (Erm.Relation.schema r) t attr with
                | Erm.Etuple.Evidence e ->
                    Ok (Obs.Provenance.find (Dst.Mass.F.digest e))
                | Erm.Etuple.Definite _ ->
                    Error
                      (Printf.sprintf
                         "%s holds a definite value; no evidential lineage\n"
                         attr)
                | exception Not_found ->
                    Error (Printf.sprintf "unknown attribute %s\n" attr)
            in
            match lookup with
            | Error m -> print_string m
            | Ok None ->
                print_string
                  "no lineage recorded for that value (was provenance on \
                   when it was derived?)\n"
            | Ok (Some id) ->
                let tree = Obs.Why.tree id in
                Format.printf "%a@." Obs.Why.pp tree;
                let sum, n = Obs.Why.kappa_steps tree in
                if n > 0 then
                  Printf.printf
                    "kappa sum-check: %d Dempster step(s), total kappa = %.6g\n"
                    n sum))

(* .rule and --rule share this parser: a rule name, optionally followed
   by a κ-threshold in [0,1] and a fallback action (default quarantine).
   The policy is session-global (Dst.Rule.current), so every merge seam
   — queries, .store delta, the sharded engine — honors it. *)
let parse_rule_spec spec =
  let ( let* ) = Result.bind in
  match
    String.split_on_char ' ' (String.trim spec)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Error "usage: .rule [RULE [KAPPA0 [FALLBACK]]]"
  | rule :: rest ->
      let* rule = Dst.Rule.of_string rule in
      (match rest with
      | [] -> Ok (Dst.Rule.make rule)
      | k :: rest ->
          let* kappa0 =
            match float_of_string_opt k with
            | Some k when k >= 0.0 && k <= 1.0 -> Ok k
            | Some _ | None ->
                Error
                  (Printf.sprintf
                     "bad kappa threshold '%s' (expected a float in [0,1])" k)
          in
          let* fallback =
            match rest with
            | [] -> Ok Dst.Rule.Quarantine
            | [ f ] -> Dst.Rule.fallback_of_string f
            | _ -> Error "usage: .rule [RULE [KAPPA0 [FALLBACK]]]"
          in
          Ok
            (Dst.Rule.make
               ~escalation:(Dst.Rule.escalate ~kappa0 fallback)
               rule))

let handle_command line =
  let cmd, rest = split_first line in
  match cmd with
  | ".help" -> print_string usage
  | ".quit" | ".exit" -> exit 0
  | ".tables" ->
      List.iter
        (fun (name, r) ->
          Printf.printf "%s (%d tuples)\n" name (Erm.Relation.cardinal r))
        (List.sort compare !env)
  | ".schema" -> (
      match List.assoc_opt rest !env with
      | Some r -> Format.printf "%a@." Erm.Schema.pp (Erm.Relation.schema r)
      | None -> Printf.printf "unknown relation %s\n" rest)
  | ".show" -> (
      match List.assoc_opt rest !env with
      | Some r -> Erm.Render.print ~title:rest r
      | None -> Printf.printf "unknown relation %s\n" rest)
  | ".load" -> load_file rest
  | ".save" -> (
      match String.split_on_char ' ' rest with
      | [ name; file ] -> (
          match List.assoc_opt name !env with
          | Some r ->
              Erm.Io.save file [ r ];
              Printf.printf "saved %s to %s\n" name file
          | None -> Printf.printf "unknown relation %s\n" name)
      | _ -> print_string "usage: .save NAME FILE\n")
  | ".let" -> (
      match String.index_opt rest '=' with
      | Some i ->
          let name = String.trim (String.sub rest 0 i) in
          let text = String.sub rest (i + 1) (String.length rest - i - 1) in
          (match Query.Physical.run ~ctx ~strategy:(strategy ()) !env text with
          | r ->
              bind name
                (Erm.Relation.map_tuples
                   (fun t -> Some t)
                   (Erm.Schema.rename_relation name (Erm.Relation.schema r))
                   r);
              Printf.printf "%s bound (%d tuples)\n" name
                (Erm.Relation.cardinal r)
          | exception Query.Parser.Parse_error m ->
              Printf.printf "parse error: %s\n" m
          | exception Query.Eval.Eval_error m -> Printf.printf "error: %s\n" m)
      | None -> print_string "usage: .let NAME = QUERY\n")
  | ".summary" -> (
      match List.assoc_opt rest !env with
      | None -> Printf.printf "unknown relation %s\n" rest
      | Some r ->
          let sn, sp = Erm.Summarize.cardinality_interval r in
          Printf.printf "%d stored tuples; expected cardinality in [%.3f, %.3f]\n"
            (Erm.Relation.cardinal r) sn sp;
          List.iter
            (fun attr ->
              if Erm.Attr.is_evidential attr && not (Erm.Relation.is_empty r)
              then begin
                Printf.printf "%s (pignistic, membership-weighted):\n"
                  (Erm.Attr.name attr);
                List.iter
                  (fun (v, p) ->
                    if p > 0.0005 then
                      Printf.printf "  %-12s %.3f\n" (Dst.Value.to_string v) p)
                  (Erm.Summarize.pignistic_histogram r (Erm.Attr.name attr))
              end)
            (Erm.Schema.nonkey (Erm.Relation.schema r)))
  | ".top" -> (
      match String.split_on_char ' ' rest with
      | [ name; k ] -> (
          match (List.assoc_opt name !env, int_of_string_opt k) with
          | Some r, Some k ->
              Erm.Render.print
                ~title:(Printf.sprintf "top %d of %s by sn" k name)
                (Erm.Rank.top k r)
          | None, _ -> Printf.printf "unknown relation %s\n" name
          | _, None -> Printf.printf "not a count: %s\n" k)
      | _ -> print_string "usage: .top NAME K\n")
  | ".assess" -> (
      match String.split_on_char ' ' rest with
      | [ a; b ] -> (
          match (List.assoc_opt a !env, List.assoc_opt b !env) with
          | Some ra, Some rb -> (
              match Integration.Reliability.assess ra rb with
              | assessment ->
                  Format.printf "%a@." Integration.Reliability.pp_assessment
                    assessment
              | exception Erm.Ops.Incompatible_schemas m ->
                  Printf.printf "error: %s\n" m)
          | None, _ -> Printf.printf "unknown relation %s\n" a
          | _, None -> Printf.printf "unknown relation %s\n" b)
      | _ -> print_string "usage: .assess NAME NAME\n")
  | ".diff" -> (
      match String.split_on_char ' ' rest with
      | [ a; b ] -> (
          match (List.assoc_opt a !env, List.assoc_opt b !env) with
          | Some ra, Some rb -> (
              match Erm.Delta.diff ra rb with
              | d -> Format.printf "%a@." Erm.Delta.pp d
              | exception Erm.Ops.Incompatible_schemas m ->
                  Printf.printf "error: %s\n" m)
          | None, _ -> Printf.printf "unknown relation %s\n" a
          | _, None -> Printf.printf "unknown relation %s\n" b)
      | _ -> print_string "usage: .diff OLD NEW\n")
  | ".csv" -> (
      match String.split_on_char ' ' rest with
      | [ name ] -> (
          match List.assoc_opt name !env with
          | Some r -> print_string (Erm.Render.to_csv r)
          | None -> Printf.printf "unknown relation %s\n" name)
      | [ name; file ] -> (
          match List.assoc_opt name !env with
          | Some r ->
              let oc = open_out file in
              output_string oc (Erm.Render.to_csv r);
              close_out oc;
              Printf.printf "wrote %s\n" file
          | None -> Printf.printf "unknown relation %s\n" name)
      | _ -> print_string "usage: .csv NAME [FILE]\n")
  | ".explain" -> (
      match Query.Parser.parse rest with
      | q -> (
          match Query.Explain.explain_optimized !env q with
          | node -> Printf.printf "%s\n" (Query.Explain.to_string node)
          | exception Query.Eval.Eval_error m -> Printf.printf "error: %s\n" m)
      | exception Query.Parser.Parse_error m ->
          Printf.printf "parse error: %s\n" m)
  | ".open" -> (
      match Store.Catalog.load rest with
      | catalog ->
          List.iter
            (fun (name, r) ->
              bind name r;
              Printf.printf "loaded %s (%d tuples)\n" name
                (Erm.Relation.cardinal r))
            (Store.Catalog.env catalog)
      | exception Store.Catalog.Catalog_error m ->
          Printf.printf "error: %s\n" m
      | exception Erm.Io.Io_error { line; message; _ } ->
          Printf.printf "error: line %d: %s\n" line message)
  | ".commit" -> (
      let catalog =
        List.fold_left
          (fun c (name, r) -> Store.Catalog.put c name r)
          (Store.Catalog.create rest)
          (List.rev !env)
      in
      match Store.Catalog.commit catalog with
      | () ->
          Printf.printf "committed %d relation(s) to %s\n"
            (List.length (Store.Catalog.names catalog))
            rest
      | exception Store.Catalog.Catalog_error m ->
          Printf.printf "error: %s\n" m
      | exception Sys_error m -> Printf.printf "error: %s\n" m)
  | ".store" -> (
      let sub, arg = split_first rest in
      (* Typed store failures are printed, never crash the shell. *)
      let store_guard f =
        match f () with
        | v -> Some v
        | exception Store.Recovery.Store_error e ->
            Printf.printf "error: %s\n" (Store.Recovery.error_to_string e);
            None
        | exception (Store.Io.Fault _ as e) ->
            Printf.printf "error: %s\n"
              (Option.value ~default:"store i/o fault"
                 (Store.Io.fault_message e));
            None
        | exception Erm.Ops.Incompatible_schemas m ->
            Printf.printf "error: %s\n" m;
            None
      in
      match sub with
      | "open" when arg <> "" -> (
          match store_guard (fun () -> Store.Estore.open_store arg) with
          | None -> ()
          | Some (t, report) ->
              current_store := Some t;
              let name = Store.Estore.name t in
              let r = Store.Estore.relation t in
              bind name r;
              if Obs.Provenance.on () then
                Erm.Lineage.register_relation ~name r;
              Printf.printf
                "store %s: %s v%d (%d tuples, %d records replayed)\n" arg name
                (Store.Estore.version t) (Erm.Relation.cardinal r)
                report.Store.Recovery.records;
              List.iter
                (fun e ->
                  Printf.printf "recovery: %s\n"
                    (Store.Recovery.event_to_string e))
                report.Store.Recovery.events)
      | "create" -> (
          match String.split_on_char ' ' arg with
          | [ dir; name ] -> (
              match List.assoc_opt name !env with
              | None -> Printf.printf "unknown relation %s\n" name
              | Some r -> (
                  match
                    store_guard (fun () -> Store.Estore.create ~dir ~name r)
                  with
                  | None -> ()
                  | Some t ->
                      current_store := Some t;
                      Printf.printf "created store %s: %s v1 (%d tuples)\n" dir
                        name (Erm.Relation.cardinal r)))
          | _ -> print_string "usage: .store create DIR NAME\n")
      | "delta" when arg <> "" -> (
          match !current_store with
          | None -> print_string "no store open (.store open DIR first)\n"
          | Some t -> (
              match Erm.Io.load arg with
              | [ rel ] -> (
                  let source = Erm.Schema.name (Erm.Relation.schema rel) in
                  match
                    store_guard (fun () -> Store.Delta.apply t ~name:source rel)
                  with
                  | None -> ()
                  | Some o ->
                      List.iter
                        (fun c ->
                          Format.printf "conflict absorbing %s: %a@." source
                            Erm.Ops.pp_conflict c)
                        o.Store.Delta.conflicts;
                      bind (Store.Estore.name t) o.Store.Delta.relation;
                      Printf.printf
                        "delta %s: %d upserts, %d deletes, %d conflicts -> v%d\n"
                        source o.Store.Delta.upserts o.Store.Delta.deletes
                        (List.length o.Store.Delta.conflicts)
                        o.Store.Delta.version)
              | _ ->
                  Printf.printf "%s: delta file must hold exactly one relation\n"
                    arg
              | exception Erm.Io.Io_error { line; message; _ } ->
                  Printf.printf "error: %s:%d: %s\n" arg line message
              | exception Sys_error m -> Printf.printf "error: %s\n" m))
      | "status" -> (
          match !current_store with
          | None -> print_string "no store open\n"
          | Some t ->
              Printf.printf "store %s: %s v%d (%d tuples)\n"
                (Store.Estore.dir t) (Store.Estore.name t)
                (Store.Estore.version t)
                (Erm.Relation.cardinal (Store.Estore.relation t)))
      | _ ->
          print_string
            "usage: .store open DIR | create DIR NAME | delta FILE | status\n")
  | ".check" -> (
      match Analysis.Check.check_string !env rest with
      | [] -> print_string "no findings\n"
      | diags -> Analysis.Report.print diags)
  | ".sweep" -> (
      (* Whole-store S-checks over every bound relation (plus the open
         store's segment history); κ telemetry is whatever .metrics /
         .provenance recording has accumulated this session. *)
      match
        Analysis.Sweep.run
          (Analysis.Sweep.subject ?store:!current_store !env)
      with
      | [] -> print_string "no findings\n"
      | diags -> Analysis.Report.print diags
      | exception Store.Recovery.Store_error e ->
          Printf.printf "error: %s\n" (Store.Recovery.error_to_string e))
  | ".strict" -> (
      match rest with
      | "on" ->
          strict := true;
          print_string "strict mode on\n"
      | "off" ->
          strict := false;
          print_string "strict mode off\n"
      | "" ->
          Printf.printf "strict mode is %s\n" (if !strict then "on" else "off")
      | _ -> print_string "usage: .strict on|off\n")
  | ".rule" -> (
      match String.trim rest with
      | "" ->
          Printf.printf "combination rule is %s\n"
            (Dst.Rule.policy_to_string (Dst.Rule.current ()))
      | spec -> (
          match parse_rule_spec spec with
          | Ok policy ->
              Dst.Rule.set_current policy;
              Printf.printf "combination rule set to %s\n"
                (Dst.Rule.policy_to_string policy)
          | Error m -> Printf.printf "error: %s\n" m))
  | ".plan" -> (
      match Query.Parser.parse rest with
      | q ->
          Printf.printf "%s\n"
            (Query.Ast.to_string (Query.Plan.optimize !env q))
      | exception Query.Parser.Parse_error m ->
          Printf.printf "parse error: %s\n" m)
  | ".physical" -> (
      match Query.Parser.parse rest with
      | q -> (
          match Query.Physical.plan_optimized !env q with
          | p -> Printf.printf "%s\n" (Query.Physical.to_string p)
          | exception Query.Eval.Eval_error m -> Printf.printf "error: %s\n" m)
      | exception Query.Parser.Parse_error m ->
          Printf.printf "parse error: %s\n" m)
  | ".trace" -> (
      match rest with
      | "on" ->
          Obs.Trace.enable Obs.Trace.default;
          print_string "tracing on\n"
      | "off" ->
          Obs.Trace.disable Obs.Trace.default;
          print_string "tracing off\n"
      | "" ->
          Printf.printf "tracing is %s (%d span(s) recorded)\n"
            (if Obs.Trace.on () then "on" else "off")
            (List.length (Obs.Trace.events Obs.Trace.default))
      | _ -> print_string "usage: .trace on|off\n")
  | ".metrics" -> (
      match rest with
      | "" ->
          if Obs.Provenance.on () then Obs.Provenance.publish ();
          print_string (Obs.Export.metrics_text ())
      | "reset" ->
          Obs.Metrics.reset ();
          print_string "metrics reset\n"
      | _ -> print_string "usage: .metrics [reset]\n")
  | ".log" -> (
      match rest with
      | "on" ->
          Obs.Log.enable ();
          print_string "flight recorder on\n"
      | "off" ->
          Obs.Log.disable ();
          print_string "flight recorder off\n"
      | "dump" -> print_string (Obs.Export.events_jsonl ())
      | "" ->
          Printf.printf "flight recorder is %s (%d event(s), capacity %d)\n"
            (if Obs.Log.on () then "on" else "off")
            (List.length (Obs.Log.events ()))
            (Obs.Log.capacity ())
      | _ -> print_string "usage: .log on|off|dump\n")
  | ".events" -> (
      let last =
        match rest with
        | "" -> Ok None
        | s -> (
            match int_of_string_opt s with
            | Some n when n >= 0 -> Ok (Some n)
            | Some _ | None -> Error ())
      in
      match last with
      | Error () -> print_string "usage: .events [N]\n"
      | Ok last -> (
          match Obs.Log.events ?last () with
          | [] -> print_string "no events recorded\n"
          | evs -> Format.printf "%a@." Obs.Log.pp_events evs))
  | ".provenance" -> (
      match rest with
      | "on" ->
          Obs.Provenance.enable ();
          (* Existing bindings become Source leaves so derivations
             recorded from here on resolve to stored tuples. *)
          List.iter
            (fun (name, r) -> Erm.Lineage.register_relation ~name r)
            !env;
          print_string "provenance on\n"
      | "off" ->
          Obs.Provenance.disable ();
          print_string "provenance off\n"
      | "reset" ->
          Obs.Provenance.reset ();
          print_string "provenance reset\n"
      | "" ->
          Printf.printf "provenance is %s (%d node(s), max depth %d)\n"
            (if Obs.Provenance.on () then "on" else "off")
            (Obs.Provenance.count ())
            (Obs.Provenance.max_depth ())
      | _ -> print_string "usage: .provenance on|off|reset\n")
  | ".why" -> why_command rest
  | ".analyze" -> (
      match Query.Parser.parse rest with
      | q -> (
          match Query.Explain.analyze ~ctx !env q with
          | r, report ->
              Printf.printf "%s\n" (Query.Explain.report_to_string report);
              Erm.Render.print ~title:"result" r
          | exception Query.Eval.Eval_error m -> Printf.printf "error: %s\n" m
          | exception Dst.Mass.F.Total_conflict ->
              Printf.printf
                "error: total conflict (kappa = 1) while combining evidence\n"
          | exception Erm.Ops.Incompatible_schemas m ->
              Printf.printf "error: %s\n" m
          | exception Erm.Etuple.Tuple_error m -> Printf.printf "error: %s\n" m)
      | exception Query.Parser.Parse_error m ->
          Printf.printf "parse error: %s\n" m)
  | _ -> Printf.printf "unknown command %s (try .help)\n" cmd

let repl () =
  let interactive = Unix.isatty Unix.stdin in
  let rec loop () =
    if interactive then begin
      print_string "eridb> ";
      flush stdout
    end;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else if line.[0] = '.' then handle_command line
        else run_query line;
        loop ()
  in
  loop ()

(* Peel [flag FILE] out of the argument list; everything left is an
   .erd file to load. *)
let rec split_out flag = function
  | f :: file :: rest when String.equal f flag ->
      let _, files = split_out flag rest in
      (Some file, files)
  | [ f ] when String.equal f flag ->
      Printf.eprintf "eridb: %s needs an argument\n" flag;
      exit 2
  | a :: rest ->
      let out, files = split_out flag rest in
      (out, a :: files)
  | [] -> (None, [])

(* --domains / ERIDB_DOMAINS must be a positive integer; anything else
   is a startup error (exit 2), not a silent fallback — a typo must not
   quietly change which engine answered the session's queries. *)
let parse_domains ~what s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> n
  | Some _ | None ->
      Printf.eprintf
        "eridb: invalid %s value '%s' (expected a positive integer)\n" what s;
      exit 2

let () =
  (match Sys.getenv_opt "ERIDB_CLOCK" with
  | Some ("virtual" | "simulated") ->
      Obs.Trace.set_clock Obs.Trace.default (Obs.Clock.simulated ());
      Obs.Log.set_clock (Obs.Clock.simulated ())
  | Some _ | None -> ());
  Obs.Metrics.enable ();
  Exec.Engine.install ();
  (match Sys.getenv_opt "ERIDB_DOMAINS" with
  | Some s -> domains := parse_domains ~what:"ERIDB_DOMAINS" s
  | None -> ());
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | [ ("-h" | "--help") ] ->
      print_string usage;
      exit 0
  | _ ->
      let trace_out, files = split_out "--trace-out" args in
      let prov_out, files = split_out "--provenance-out" files in
      let flight_out, files = split_out "--flight-out" files in
      let domains_arg, files = split_out "--domains" files in
      let rule_arg, files = split_out "--rule" files in
      (* Output sinks register before any flag that can exit 2: a bad
         --domains or --rule still leaves through the shared protected
         flush, so the files the user asked for are written. *)
      (match trace_out with
      | Some file ->
          Obs.Trace.enable Obs.Trace.default;
          Obs.Export.on_exit_flush (fun () ->
              Obs.Export.write_chrome Obs.Trace.default file)
      | None -> ());
      (match prov_out with
      | Some file ->
          Obs.Provenance.enable ();
          Obs.Export.on_exit_flush (fun () -> Obs.Export.write_provenance file)
      | None -> ());
      (match flight_out with
      | Some file ->
          Obs.Metrics.enable ();
          Obs.Log.enable ();
          Obs.Export.on_exit_flush (fun () -> Obs.Export.write_flight file)
      | None -> ());
      (match domains_arg with
      | Some s -> domains := parse_domains ~what:"--domains" s
      | None -> ());
      (match rule_arg with
      | Some spec -> (
          match parse_rule_spec spec with
          | Ok policy -> Dst.Rule.set_current policy
          | Error m ->
              Printf.eprintf "eridb: invalid --rule value: %s\n" m;
              exit 2)
      | None -> ());
      List.iter load_file files);
  repl ()
