(* federate — integrate evidential relations from the command line.

     federate data/restaurants.erd --relations ra,rb --query \
       "SELECT rname FROM integrated WHERE rating IS {ex} WITH SN > 0.5"

   Loads .erd files, folds the named (union-compatible) relations with
   Dempster's rule via the fault-tolerant federation runtime
   (Federation.Degrade over Integration.Multi), reports per-source
   outcomes, conflicts and reliabilities, and optionally queries or
   saves the result. --fault-plan/--seed inject deterministic chaos for
   reproducible degradation runs. --audit appends a per-merge lineage
   audit with per-source κ-attribution; --metrics-out flushes the
   metrics registry even on error exits (.prom selects Prometheus
   exposition, anything else JSON); --flight-out journals typed
   flight-recorder events and dumps the surviving ring plus a metrics
   snapshot as JSONL, again even on error exits — a crash dump of what
   happened last. --domains N with N > 1 runs the
   merge through the sharded execution engine (N shards/workers); the
   report is identical to the default path's by Degrade's contract.
   --rule selects the combination rule (dempster, yager, dubois-prade,
   averaging, discount[:alpha]); --kappa-threshold K --fallback ACTION
   adds a κ-escalation policy on top (combine with a fallback rule, or
   quarantine the cell and exit 3).

   Exit codes: 0 success, 1 source/load/query failure, 2 quorum not
   met, 3 quarantined merges, 124 command-line usage error (Cmdliner). *)

open Cmdliner

let exit_source_failure = 1
let exit_quorum = 2
let exit_quarantine = 3

(* Load every file, each through the typed channel. In quarantine mode
   ([--skip-malformed]) a file that fails to read or parse is reported
   and skipped instead of aborting the federation. Erm.Io.load already
   prefixes its messages with the path; strip it where we re-attach the
   path ourselves. *)
let strip_path_prefix path m =
  let p = path ^ ": " in
  let n = String.length p in
  if String.length m >= n && String.sub m 0 n = p then
    String.sub m n (String.length m - n)
  else m

let load_all ~skip_malformed files =
  let loaded, skipped =
    List.fold_left
      (fun (loaded, skipped) path ->
        match Erm.Io.load path with
        | rels ->
            let named =
              List.map
                (fun r -> (Erm.Schema.name (Erm.Relation.schema r), r))
                rels
            in
            (loaded @ named, skipped)
        | exception Sys_error m ->
            (loaded, skipped @ [ (path, strip_path_prefix path m) ])
        | exception Erm.Io.Io_error { line; message; _ } ->
            ( loaded,
              skipped
              @ [ ( path,
                    Printf.sprintf "line %d: %s" line
                      (strip_path_prefix path message) ) ] ))
      ([], []) files
  in
  match (skipped, skip_malformed) with
  | [], _ -> Ok (loaded, [])
  | (path, reason) :: _, false -> Error (path ^ ": " ^ reason)
  | _, true -> Ok (loaded, skipped)

let pick_sources env = function
  | [] -> Ok env
  | names ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
            match List.assoc_opt n env with
            | Some r -> go ((n, r) :: acc) rest
            | None -> Error (Printf.sprintf "no relation named %s" n))
      in
      go [] names

let print_skipped skipped =
  List.iter
    (fun (path, reason) ->
      Format.printf "skipped %s: %s@." path reason)
    skipped

(* --validate: lint every source file before integrating; error-level
   findings abort the run with the source-failure exit code. *)
let validate_files files =
  let diags = List.concat_map Analysis.Erd_lint.lint_file files in
  Analysis.Report.print diags;
  if List.exists Analysis.Diagnostic.is_error diags then
    Error "static validation failed (see diagnostics above)"
  else Ok ()

(* --audit: append a per-merge lineage audit. Each absorption step in
   Integration.Multi brackets the provenance nodes it produced with a
   Step node carrying a [from, to) id range; scanning each bracket
   attributes every combination's κ to the source whose absorption
   caused it, so flaky sources are rankable across runs. *)
let write_audit path =
  let module P = Obs.Provenance in
  let nodes = P.nodes () in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# federate audit\n";
      let per_source = ref [] in
      List.iter
        (fun (s : P.node) ->
          if s.P.kind = P.Step then begin
            let arg k =
              match List.assoc_opt k s.P.args with Some v -> v | None -> ""
            in
            let name = arg "source" in
            let from_ = int_of_string (arg "from") in
            let upto = int_of_string (arg "to") in
            let combines = ref 0 and ksum = ref 0.0 and kmax = ref 0.0 in
            for i = from_ to upto - 1 do
              let n = P.node i in
              match (n.P.kind, n.P.kappa) with
              | P.Combine, Some k ->
                  incr combines;
                  ksum := !ksum +. k;
                  if k > !kmax then kmax := k
              | _ -> ()
            done;
            for i = from_ to upto - 1 do
              let n = P.node i in
              if n.P.kind = P.Merge then begin
                let kappa =
                  Array.fold_left
                    (fun acc j ->
                      match (P.node j).P.kappa with
                      | Some k -> acc +. k
                      | None -> acc)
                    0.0 n.P.inputs
                in
                let key =
                  let l = n.P.label in
                  let prefix = "merge " in
                  let np = String.length prefix in
                  if
                    String.length l > np
                    && String.equal (String.sub l 0 np) prefix
                  then String.sub l np (String.length l - np)
                  else l
                in
                Printf.fprintf oc "merge source=%s key=(%s) kappa=%.6g\n"
                  name key kappa
              end
            done;
            Printf.fprintf oc
              "step source=%s combines=%d kappa_sum=%.6g kappa_max=%.6g\n"
              name !combines !ksum !kmax;
            per_source := (name, (!ksum, !combines)) :: !per_source
          end)
        nodes;
      let ranked =
        List.sort
          (fun (a, (ka, _)) (b, (kb, _)) ->
            match compare kb ka with 0 -> compare a b | c -> c)
          !per_source
      in
      List.iteri
        (fun i (name, (ksum, combines)) ->
          Printf.fprintf oc "rank %d source=%s kappa_sum=%.6g combines=%d\n"
            (i + 1) name ksum combines)
        ranked)

(* --store/--delta: the persistent evidence store. Recovery output is
   deterministic (version, counts, events in occurrence order), so
   chaos runs golden-test cleanly. *)
let print_recovery dir (report : Store.Recovery.report) =
  Printf.printf "store %s: %s v%d, %d segments, %d records replayed\n" dir
    report.Store.Recovery.store_name report.version report.segments
    report.records;
  List.iter
    (fun e -> Printf.printf "recovery: %s\n" (Store.Recovery.event_to_string e))
    report.Store.Recovery.events

let run files relations discount name query csv out report_only fault_plan
    seed retries timeout_ms budget_ms min_sources skip_malformed validate
    metrics_out audit domains store_dir delta_file store_fault_plan rule
    kappa_threshold fallback flight_out =
  Exec.Engine.install ();
  (match metrics_out with
  | Some _ ->
      Obs.Metrics.enable ();
      Obs.Metrics.reset ()
  | None -> ());
  (match audit with
  | Some _ ->
      Obs.Provenance.enable ();
      Obs.Provenance.reset ()
  | None -> ());
  (match flight_out with
  | Some _ ->
      (* The journal rides the simulated clock like the federation
         runtime itself, so a crash dump is deterministic for a given
         seed and fault plan. *)
      Obs.Metrics.enable ();
      Obs.Log.set_clock (Obs.Clock.simulated ());
      Obs.Log.enable ();
      Obs.Log.clear ()
  | None -> ());
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let fail code m = Error (code, m) in
  (* The combination rule is session-global: every merge seam (inline,
     sharded, store delta) reads Dst.Rule.current, so setting it once
     here covers them all. *)
  let policy_setup () =
    match (kappa_threshold, fallback) with
    | None, Some _ ->
        fail Cmd.Exit.cli_error "--fallback requires --kappa-threshold"
    | None, None -> Ok (Dst.Rule.set_current (Dst.Rule.make rule))
    | Some k, _ when not (k >= 0.0 && k <= 1.0) ->
        fail Cmd.Exit.cli_error "--kappa-threshold must be in [0,1]"
    | Some k, fb ->
        let fb = Option.value fb ~default:Dst.Rule.Quarantine in
        Ok
          (Dst.Rule.set_current
             (Dst.Rule.make ~escalation:(Dst.Rule.escalate ~kappa0:k fb) rule))
  in
  let store_io =
    match store_fault_plan with
    | None -> Store.Io.real
    | Some plan -> Store.Io.faulty ~seed ~plan Store.Io.real
  in
  (* Store failures are always typed: Store_error from the recovery
     state machine, Io.Fault from real or injected disk faults. Both
     map to the source-failure exit. *)
  let store_guard f =
    match f () with
    | v -> Ok v
    | exception Store.Recovery.Store_error e ->
        fail exit_source_failure (Store.Recovery.error_to_string e)
    | exception (Store.Io.Fault _ as e) ->
        fail exit_source_failure
          (Option.value ~default:"store i/o fault"
             (Store.Io.fault_message e))
  in
  let render r =
    if csv then print_string (Erm.Render.to_csv r) else Erm.Render.print r
  in
  let query_and_out env r =
    try
      (match query with
      | Some text -> render (Query.Eval.run env text)
      | None -> render r);
      (match out with
      | Some path ->
          Erm.Io.save path [ r ];
          Printf.printf "wrote %s\n" path
      | None -> ());
      Ok ()
    with
    | Sys_error m -> fail exit_source_failure m
    | Query.Parser.Parse_error m ->
        fail exit_source_failure ("parse error: " ^ m)
    | Query.Eval.Eval_error m -> fail exit_source_failure m
    | Erm.Ops.Incompatible_schemas m -> fail exit_source_failure m
    | Dst.Mass.F.Total_conflict ->
        fail exit_source_failure
          "total conflict (kappa = 1) during query evaluation"
  in
  (* Open the store (through recovery), optionally fold one delta file
     into it, then expose the stored relation to --query/--out. *)
  let store_body dir =
    let* t, report =
      store_guard (fun () -> Store.Estore.open_store ~io:store_io dir)
    in
    print_recovery dir report;
    let* () =
      match delta_file with
      | None -> Ok ()
      | Some dfile ->
          let* rel =
            match Erm.Io.load dfile with
            | [ r ] -> Ok r
            | _ ->
                fail exit_source_failure
                  (dfile ^ ": delta file must hold exactly one relation")
            | exception Sys_error m -> fail exit_source_failure m
            | exception Erm.Io.Io_error { line; message; _ } ->
                fail exit_source_failure
                  (Printf.sprintf "%s: line %d: %s" dfile line
                     (strip_path_prefix dfile message))
          in
          let source = Erm.Schema.name (Erm.Relation.schema rel) in
          let* outcome =
            match
              store_guard (fun () -> Store.Delta.apply t ~name:source rel)
            with
            | Ok o -> Ok o
            | Error _ as e -> e
            | exception Erm.Ops.Incompatible_schemas m ->
                fail exit_source_failure m
          in
          List.iter
            (fun c ->
              Format.printf "conflict absorbing %s: %a@." source
                Erm.Ops.pp_conflict c)
            outcome.Store.Delta.conflicts;
          Printf.printf "delta %s: %d upserts, %d deletes, %d conflicts -> v%d\n"
            source outcome.Store.Delta.upserts outcome.Store.Delta.deletes
            (List.length outcome.Store.Delta.conflicts)
            outcome.Store.Delta.version;
          Ok ()
    in
    if report_only then Ok ()
    else
      let stored = Store.Estore.relation t in
      query_and_out [ (Store.Estore.name t, stored) ] stored
  in
  let body () =
    let* () = policy_setup () in
    let* () =
      match (store_dir, delta_file) with
      | None, Some _ ->
          fail Cmd.Exit.cli_error "--delta requires --store DIR"
      | _ -> Ok ()
    in
    let* () =
      if files = [] && store_dir = None then
        fail Cmd.Exit.cli_error "pass at least one FILE.erd or --store DIR"
      else Ok ()
    in
    match store_dir with
    | Some dir when files = [] || delta_file <> None ->
        (* Pure store runs: open (recovery), optionally fold a delta,
           then query/print the stored relation. *)
        store_body dir
    | _ ->
    let* () =
      if validate then
        Result.map_error (fun m -> (exit_source_failure, m)) (validate_files files)
      else Ok ()
    in
    let* env, skipped =
      Result.map_error
        (fun m -> (exit_source_failure, m))
        (load_all ~skip_malformed files)
    in
    print_skipped skipped;
    let* () =
      if env = [] then
        fail exit_source_failure "no relations loaded; pass at least one .erd"
      else Ok ()
    in
    let* picked =
      Result.map_error
        (fun m -> (exit_source_failure, m))
        (pick_sources env relations)
    in
    let clock = Federation.Clock.simulated () in
    let sources =
      List.map
        (fun (n, r) ->
          let s = Federation.Source.of_relation ~name:n r in
          match fault_plan with
          | None -> s
          | Some plan ->
              Federation.Fault.wrap ~seed ~clock
                (Federation.Fault.spec_for plan n)
                s)
        picked
    in
    let config =
      { Federation.Degrade.default with
        policy =
          { Federation.Retry.default with
            retries;
            deadline_ms = timeout_ms };
        min_sources;
        budget_ms;
        conflict_discount = discount }
    in
    (* The merge itself is swappable: with --domains N > 1 the sharded
       engine's drop-in replaces Integration.Multi.integrate (identical
       report, partitioned absorption folds). *)
    let merge =
      if domains > 1 then
        Exec.Engine.integrate { Query.Physical.shards = domains; domains }
      else Integration.Multi.integrate
    in
    (* Combination exceptions escaping the runtime used to abort as an
       uncaught exception, bypassing the metrics flush; turn them into
       the typed source-failure exit instead. *)
    let* outcome =
      match
        Federation.Degrade.integrate ~config ~seed ~integrate:merge ~clock
          sources
      with
      | outcome -> Ok outcome
      | exception Dst.Mass.F.Total_conflict ->
          fail exit_source_failure
            "total conflict (kappa = 1) while combining evidence"
      | exception Erm.Etuple.Tuple_error m ->
          fail exit_source_failure ("tuple error: " ^ m)
    in
    match outcome with
    | Error (Federation.Degrade.Quorum_not_met { outcomes; _ } as f) ->
        Format.printf "%a@." Federation.Degrade.pp_outcomes outcomes;
        fail exit_quorum
          (Format.asprintf "%a" Federation.Degrade.pp_failure f)
    | Error (Federation.Degrade.No_sources as f) ->
        fail exit_source_failure
          (Format.asprintf "%a" Federation.Degrade.pp_failure f)
    | Ok report ->
        Format.printf "%a@." Federation.Degrade.pp_outcomes
          report.Federation.Degrade.outcomes;
        Format.printf "%a@." Integration.Multi.pp
          report.Federation.Degrade.multi;
        (match audit with
        | Some path ->
            write_audit path;
            Printf.printf "wrote audit to %s\n" path
        | None -> ());
        let merged = report.Federation.Degrade.multi.integrated in
        let integrated =
          Erm.Relation.map_tuples
            (fun t -> Some t)
            (Erm.Schema.rename_relation name (Erm.Relation.schema merged))
            merged
        in
        (* Persist even under --report-only: creating the store is the
           point of the run, not part of rendering. *)
        let* () =
          match store_dir with
          | None -> Ok ()
          | Some dir ->
              let* t =
                store_guard (fun () ->
                    Store.Estore.create ~io:store_io ~dir ~name integrated)
              in
              Printf.printf "created store %s: %s v%d (%d tuples)\n" dir
                (Store.Estore.name t) (Store.Estore.version t)
                (Erm.Relation.cardinal (Store.Estore.relation t));
              Ok ()
        in
        let* () =
          if report_only then Ok ()
          else query_and_out ((name, integrated) :: env) integrated
        in
        (* Quarantined cells are a typed outcome, not a silent drop: the
           merge completed (and was rendered/persisted above), but the
           integrator is told through the exit code that κ-escalation
           withheld at least one combination. *)
        let quarantined =
          List.filter
            (fun (_, c) -> Erm.Ops.is_quarantine c)
            report.Federation.Degrade.multi.conflicts
        in
        if quarantined = [] then Ok ()
        else
          fail exit_quarantine
            (Printf.sprintf
               "%d merge(s) quarantined by kappa-escalation (rule %s)"
               (List.length quarantined)
               (Dst.Rule.policy_to_string (Dst.Rule.current ())))
  in
  (* Output flushes live in the shared protected-flush registry so runs
     that exit through a typed error path (1/2/3/124) still write their
     metrics and flight journal. The metrics file extension picks the
     format: .prom for Prometheus text exposition, anything else JSON. *)
  (match metrics_out with
  | Some path ->
      Obs.Export.on_exit_flush (fun () ->
          if Obs.Provenance.on () then Obs.Provenance.publish ();
          Obs.Export.write_metrics path;
          Printf.printf "wrote metrics to %s\n" path)
  | None -> ());
  (match flight_out with
  | Some path ->
      Obs.Export.on_exit_flush (fun () ->
          Obs.Export.write_flight path;
          Printf.printf "wrote flight journal to %s\n" path)
  | None -> ());
  Obs.Export.flush_protect body

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE.erd")

let relations_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "relations"; "r" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated relation names to integrate (default: every \
           relation found, in load order). They must be union-compatible.")

let discount_arg =
  Arg.(
    value & flag
    & info [ "discount" ]
        ~doc:
          "Estimate each source's reliability from pairwise conflict and \
           $(b,α)-discount its evidence before merging. Avoids losing \
           tuples to total conflict at the cost of extra ignorance.")

let name_arg =
  Arg.(
    value & opt string "integrated"
    & info [ "name" ] ~docv:"NAME"
        ~doc:"Name for the integrated relation (also its query alias).")

let query_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "query"; "q" ] ~docv:"QUERY"
        ~doc:
          "Evaluate a query instead of printing the integrated relation. \
           All loaded relations plus $(b,NAME) are in scope.")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Render results as CSV.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE"
        ~doc:"Also write the integrated relation to $(docv) (.erd format).")

let report_arg =
  Arg.(
    value & flag
    & info [ "report-only" ]
        ~doc:
          "Print only the integration report (outcomes, conflicts, \
           reliabilities).")

let fault_plan_conv =
  let parse s =
    match Federation.Fault.plan_of_string s with
    | Ok plan -> Ok plan
    | Error m -> Error (`Msg ("bad fault plan: " ^ m))
  in
  let print ppf _ = Format.pp_print_string ppf "<fault-plan>" in
  Arg.conv (parse, print)

let fault_plan_arg =
  Arg.(
    value
    & opt (some fault_plan_conv) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Inject deterministic faults for chaos runs: \
           $(i,name:key=value,…;…) where name is a relation name or \
           $(b,*) and keys are fail, timeout, corrupt, drop \
           (probabilities), latency, hang (milliseconds). Example: \
           $(b,ra:fail=0.5,latency=20;*:timeout=0.1). Reproducible given \
           $(b,--seed).")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:"Seed for fault injection and retry jitter.")

let retries_arg =
  Arg.(
    value & opt int Federation.Retry.default.Federation.Retry.retries
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra fetch attempts per source after the first (exponential \
           backoff with jitter between attempts).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-source fetch deadline. Deliveries past it are treated as \
           stale and discounted.")

let budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-ms" ] ~docv:"MS"
        ~doc:"Total integration budget across all source fetches.")

let min_sources_arg =
  Arg.(
    value & opt int 0
    & info [ "min-sources" ] ~docv:"N"
        ~doc:
          "Quorum: integrate only if at least $(docv) sources deliver \
           (default 0 = all selected sources must deliver).")

let skip_malformed_arg =
  Arg.(
    value & flag
    & info [ "skip-malformed" ]
        ~doc:
          "Quarantine files that fail to read or parse: report and skip \
           them instead of aborting the federation.")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:
          "Run the static $(b,.erd) linter over every source file before \
           integrating; error-level findings abort the run.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics registry (combination counts, conflict \
           mass, retry attempts, …) to $(docv) — Prometheus text \
           exposition if $(docv) ends in .prom, JSON otherwise. Written \
           even when the run exits with an error. The federation clock is \
           simulated, so the dump is deterministic for a given seed and \
           fault plan.")

let audit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "audit" ] ~docv:"FILE"
        ~doc:
          "Enable provenance recording and append a per-merge audit log \
           to $(docv): one line per merged key with its conflict mass, a \
           per-source summary of every Dempster combination its \
           absorption caused, and a ranking by total κ so flaky sources \
           stand out across runs.")

let domains_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
        Error
          (`Msg
             (Printf.sprintf "invalid value '%s' (expected a positive integer)"
                s))
  in
  Arg.conv (parse, Format.pp_print_int)

let domains_arg =
  Arg.(
    value & opt domains_conv 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Run the merge through the sharded execution engine with $(docv) \
           shards and up to $(docv) parallel workers (default 1 = the \
           classic sequential merge). The integration report is identical \
           either way.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Crash-safe evidence store directory. With FILE.erd sources, \
           persist the integrated relation there (the directory must not \
           already hold a store). Without sources, open the store through \
           recovery and expose its relation to $(b,--query)/$(b,--out).")

let delta_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "delta" ] ~docv:"FILE.erd"
        ~doc:
          "Fold one source update (a single relation) into the store \
           opened with $(b,--store), touching only the changed entities: \
           Dempster's rule is associative, so absorbing the delta into the \
           stored relation equals a full rebuild, bit for bit. Appends a \
           new segment and bumps the store version.")

let store_fault_plan_conv =
  let parse s =
    match Store.Io.plan_of_string s with
    | Ok plan -> Ok plan
    | Error m -> Error (`Msg ("bad store fault plan: " ^ m))
  in
  let print ppf _ = Format.pp_print_string ppf "<store-fault-plan>" in
  Arg.conv (parse, print)

let store_fault_plan_arg =
  Arg.(
    value
    & opt (some store_fault_plan_conv) None
    & info [ "store-fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Inject deterministic disk faults into store i/o: \
           $(i,class:key=value,…;…) where class is $(b,segment), \
           $(b,manifest) or $(b,*) and keys are eio, enospc, short, flip, \
           fsync_eio, rename (probabilities) or torn_at (byte offset). \
           Example: $(b,segment:torn_at=40) tears the next segment write \
           at byte 40. Reproducible given $(b,--seed).")

let rule_conv =
  let parse s =
    match Dst.Rule.of_string s with
    | Ok r -> Ok r
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, Dst.Rule.pp)

let rule_arg =
  Arg.(
    value
    & opt rule_conv Dst.Rule.Dempster
    & info [ "rule" ] ~docv:"RULE"
        ~doc:
          "Combination rule applied to matched evidence cells: \
           $(b,dempster) (default), $(b,yager) (conflict mass moves to \
           Ω instead of normalizing), $(b,dubois-prade) (conflict mass \
           moves to the union of the disagreeing focal sets), \
           $(b,averaging) (pointwise mean; idempotent but not \
           associative, so the source fold order matters), or \
           $(b,discount)[$(b,:ALPHA)] (α-discount both operands, then \
           Dempster; default α picked so total conflict is impossible).")

let fallback_conv =
  let parse s =
    match Dst.Rule.fallback_of_string s with
    | Ok f -> Ok f
    | Error m -> Error (`Msg m)
  in
  let print ppf f = Format.pp_print_string ppf (Dst.Rule.fallback_to_string f) in
  Arg.conv (parse, print)

let kappa_threshold_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "kappa-threshold" ] ~docv:"K"
        ~doc:
          "κ-escalation: whenever two evidence cells' raw conflict κ \
           reaches $(docv) (in [0,1]), the primary $(b,--rule) is not \
           trusted with the combination and the $(b,--fallback) action \
           runs instead. 1 degenerates to the pure primary rule \
           (escalating only where Dempster is undefined); 0 escalates \
           every combination.")

let flight_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-out" ] ~docv:"FILE"
        ~doc:
          "Enable the flight recorder and write its event journal (one \
           JSON object per line: retries, degraded sources, \
           κ-escalations, store commits, …) plus a final metrics \
           snapshot to $(docv). Written even when the run exits with an \
           error, so it doubles as a crash dump of the last events before \
           the failure. The journal rides the simulated federation \
           clock, so it is deterministic for a given seed and fault \
           plan.")

let fallback_arg =
  Arg.(
    value
    & opt (some fallback_conv) None
    & info [ "fallback" ] ~docv:"ACTION"
        ~doc:
          "What κ-escalation does (requires $(b,--kappa-threshold)): a \
           rule name to combine with instead, or $(b,quarantine) \
           (default) to withhold the merge, report the pair as a \
           conflict, and exit with code 3.")

let term =
  Term.(
    const run $ files_arg $ relations_arg $ discount_arg $ name_arg
    $ query_arg $ csv_arg $ out_arg $ report_arg $ fault_plan_arg $ seed_arg
    $ retries_arg $ timeout_arg $ budget_arg $ min_sources_arg
    $ skip_malformed_arg $ validate_arg $ metrics_out_arg $ audit_arg
    $ domains_arg $ store_arg $ delta_arg $ store_fault_plan_arg $ rule_arg
    $ kappa_threshold_arg $ fallback_arg $ flight_out_arg)

let cmd =
  let doc = "integrate evidential (.erd) relations with Dempster's rule" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Implements the database-integration operator of Lim, Srivastava \
         and Shekhar (ICDE 1994): key-matched tuples from every source are \
         merged attribute-by-attribute with Dempster's rule of \
         combination; tuple membership pairs combine on the boolean \
         frame; total conflicts are reported to the integrator rather \
         than resolved silently. Sources are fetched through a \
         fault-tolerant runtime: transient failures are retried with \
         exponential backoff, flaky or stale sources are α-discounted \
         (Shafer) rather than dropped or trusted, and the run fails with \
         a per-source outcome report if the quorum is not met.";
      `S Manpage.s_examples;
      `P "Integrate the sample data and query it:";
      `Pre
        "  federate data/restaurants.erd -r ra,rb \\\\\n\
        \    -q \"SELECT rname FROM integrated WHERE rating IS {ex} WITH SN \
         > 0.5\"";
      `P "A reproducible chaos run:";
      `Pre
        "  federate data/restaurants.erd -r ra,rb --seed 7 \\\\\n\
        \    --fault-plan \"ra:fail=0.6,latency=20;rb:corrupt=0.3\" \\\\\n\
        \    --retries 3 --min-sources 1 --report-only" ]
  in
  let exits =
    Cmd.Exit.info exit_source_failure
      ~doc:"a source failed to load, parse or integrate, or the query failed."
    :: Cmd.Exit.info exit_quorum
         ~doc:"quorum not met: too few sources delivered."
    :: Cmd.Exit.info exit_quarantine
         ~doc:
           "κ-escalation quarantined at least one merge (see \
            $(b,--kappa-threshold)); the reported result omits the \
            quarantined pairs."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "federate" ~version:"1.0" ~doc ~man ~exits)
    (Term.map
       (function
         | Ok () -> 0
         | Error (code, m) ->
             Printf.eprintf "federate: %s\n" m;
             code)
       term)

let () = exit (Cmd.eval' cmd)
